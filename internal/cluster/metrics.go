package cluster

import (
	"fmt"
	"time"

	"shredder/internal/ingest"
	"shredder/internal/obs"
)

// streamOps are the routed-operation labels.
var streamOps = []string{"backup", "backup_dedup", "restore", "delete"}

// metrics holds the routing layer's pre-resolved metric handles,
// per-node families indexed by topology position. A nil *metrics (no
// registry) makes every method a no-op.
type metrics struct {
	sessionsActive *obs.Gauge
	sessionsTotal  [ingest.ProtocolVersion + 1]*obs.Counter // by negotiated version; 0 = legacy raw
	frames         *obs.Counter
	streams        map[string]*obs.Counter
	logicalBytes   *obs.Counter

	nodeUp       []*obs.Gauge
	nodeTx       []*obs.Counter
	nodeRx       []*obs.Counter
	nodeRounds   []*obs.Counter
	nodeRoundSec []*obs.Histogram
	nodeDialFail []*obs.Counter
}

func newMetrics(reg *obs.Registry, t Topology) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		sessionsActive: reg.Gauge("cluster_sessions_active",
			"Client sessions the router is currently serving."),
		frames: reg.Counter("cluster_routed_frames_total",
			"Protocol frames received from clients and routed."),
		streams: make(map[string]*obs.Counter, len(streamOps)),
		logicalBytes: reg.Counter("cluster_logical_bytes_total",
			"Logical stream bytes committed across the cluster."),
	}
	for v := byte(0); v <= ingest.ProtocolVersion; v++ {
		m.sessionsTotal[v] = reg.Counter("cluster_sessions_total",
			"Client sessions completed, by negotiated protocol version.",
			"protocol", fmt.Sprintf("%d", max(v, 1)))
	}
	for _, op := range streamOps {
		m.streams[op] = reg.Counter("cluster_streams_total",
			"Routed operations completed, by kind.", "op", op)
	}
	for _, n := range t.Nodes {
		m.nodeUp = append(m.nodeUp, reg.Gauge("cluster_node_up",
			"Whether the node's last session setup succeeded (1) or failed (0).",
			"node", n.ID))
		m.nodeTx = append(m.nodeTx, reg.Counter("cluster_node_tx_bytes_total",
			"Payload bytes routed to the node (fingerprints, bodies, manifests).",
			"node", n.ID))
		m.nodeRx = append(m.nodeRx, reg.Counter("cluster_node_rx_bytes_total",
			"Payload bytes received from the node (restored chunks, manifests).",
			"node", n.ID))
		m.nodeRounds = append(m.nodeRounds, reg.Counter("cluster_node_rounds_total",
			"Dedup fingerprint rounds run against the node.", "node", n.ID))
		m.nodeRoundSec = append(m.nodeRoundSec, reg.Histogram("cluster_node_round_seconds",
			"Per-node dedup round latency (HasBatch out to missing-set answer).",
			obs.LatencyBuckets, "node", n.ID))
		m.nodeDialFail = append(m.nodeDialFail, reg.Counter("cluster_node_dial_failures_total",
			"Failed attempts to lease a session to the node.", "node", n.ID))
	}
	return m
}

func (m *metrics) sessionStart() {
	if m == nil {
		return
	}
	m.sessionsActive.Inc()
}

func (m *metrics) sessionEnd(ver byte) {
	if m == nil {
		return
	}
	m.sessionsActive.Dec()
	if int(ver) < len(m.sessionsTotal) {
		m.sessionsTotal[ver].Inc()
	}
}

func (m *metrics) frame() {
	if m == nil {
		return
	}
	m.frames.Inc()
}

func (m *metrics) stream(op string) {
	if m == nil {
		return
	}
	if c, ok := m.streams[op]; ok {
		c.Inc()
	}
}

func (m *metrics) committed(bytes int64) {
	if m == nil {
		return
	}
	m.logicalBytes.Add(bytes)
}

func (m *metrics) setNodeUp(i int, up bool) {
	if m == nil {
		return
	}
	v := int64(0)
	if up {
		v = 1
	}
	m.nodeUp[i].Set(v)
}

func (m *metrics) dialFailure(i int) {
	if m == nil {
		return
	}
	m.nodeDialFail[i].Inc()
}

func (m *metrics) round(i int, dur time.Duration) {
	if m == nil {
		return
	}
	m.nodeRounds[i].Inc()
	m.nodeRoundSec[i].Observe(dur.Seconds())
}

func (m *metrics) nodeTraffic(i int, tx, rx int64) {
	if m == nil {
		return
	}
	if tx > 0 {
		m.nodeTx[i].Add(tx)
	}
	if rx > 0 {
		m.nodeRx[i].Add(rx)
	}
}
