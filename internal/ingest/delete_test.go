package ingest

import (
	"errors"
	"strings"
	"testing"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
	"shredder/internal/workload"
)

// TestDeleteOverWire is the retention happy path: a v3 session expires
// one of two streams; the deleted name stops restoring, the retained
// one still restores byte-exactly, and re-backing-up the deleted data
// re-uploads the freed chunks.
func TestDeleteOverWire(t *testing.T) {
	srv, err := NewServer(testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	spec := chunk.FastCDCSpec(4 << 10)
	if _, err := c.NegotiateDedup(spec); err != nil {
		t.Fatal(err)
	}
	im := workload.NewImage(91, 2<<20, 64<<10, 0.5)
	snap := im.Snapshot(92)
	mst, err := c.BackupDedupBytes("master", im.Master)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.BackupDedupBytes("snap", snap); err != nil {
		t.Fatal(err)
	}

	ds, err := c.Delete("master")
	if err != nil {
		t.Fatal(err)
	}
	if ds.ChunksReleased != mst.Chunks {
		t.Fatalf("released %d references for a %d-chunk stream", ds.ChunksReleased, mst.Chunks)
	}
	if ds.ChunksFreed == 0 || ds.BytesFreed == 0 {
		t.Fatalf("a 50%%-churn master freed nothing: %+v", ds)
	}
	if ds.ChunksFreed >= mst.Chunks {
		t.Fatalf("everything freed (%d of %d) despite the snapshot sharing chunks", ds.ChunksFreed, mst.Chunks)
	}

	if _, err := c.RestoreBytes("master"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restore of deleted stream = %v, want ErrNotFound", err)
	}
	if err := c.Verify("snap", snap); err != nil {
		t.Fatalf("retained stream after delete: %v", err)
	}

	// Re-push the deleted stream: the freed chunks cross the wire
	// again, the shared (still-referenced) ones are skipped.
	rst, err := c.BackupDedupBytes("master2", im.Master)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Wire.ChunksSent != ds.ChunksFreed {
		t.Fatalf("re-push uploaded %d bodies, want exactly the %d freed", rst.Wire.ChunksSent, ds.ChunksFreed)
	}
	if err := c.Verify("master2", im.Master); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteUnknownNameKeepsSession: deleting a name the server never
// saw is an application error, not a protocol violation — the session
// keeps working.
func TestDeleteUnknownNameKeepsSession(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c := startSession(t, srv)
	if _, err := c.NegotiateDedup(chunk.FastCDCSpec(4 << 10)); err != nil {
		t.Fatal(err)
	}
	var nf *NotFoundError
	if _, err := c.Delete("ghost"); !errors.As(err, &nf) || nf.Op != "delete" || nf.Name != "ghost" {
		t.Fatalf("delete of unknown name = %v, want NotFoundError{Op: delete}", err)
	}
	if _, err := c.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete not-found does not match ErrNotFound")
	}
	data := workload.Random(3, 256<<10)
	if _, err := c.BackupDedupBytes("after", data); err != nil {
		t.Fatalf("session dead after benign delete error: %v", err)
	}
	if err := c.Verify("after", data); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRequiresV3: the client refuses locally below v3, and a
// hand-rolled MsgDelete on a legacy session is a protocol violation
// the server answers with a typed error.
func TestDeleteRequiresV3(t *testing.T) {
	c := NewSession(deadConn{})
	if _, err := c.Delete("x"); !errors.Is(err, ErrDeleteUnsupported) {
		t.Fatalf("Delete without negotiation = %v, want ErrDeleteUnsupported", err)
	}
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c2 := startSession(t, srv)
	if _, err := c2.Negotiate(chunk.FastCDCSpec(4 << 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Delete("x"); !errors.Is(err, ErrDeleteUnsupported) {
		t.Fatalf("Delete on v2 session = %v, want ErrDeleteUnsupported", err)
	}

	conn, br, errc := rawSession(t, srv)
	if err := writeFrame(conn, MsgDelete, []byte("sneak")); err != nil {
		t.Fatal(err)
	}
	typ, reply, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError || !strings.Contains(string(reply), "below protocol version 3") {
		t.Fatalf("reply %d %q", typ, reply)
	}
	conn.Close()
	var fe *UnexpectedFrameError
	if serr := <-errc; !errors.As(serr, &fe) {
		t.Fatalf("server error = %v, want UnexpectedFrameError", serr)
	}
}

// TestAbortedDedupStreamReleasesPins: a dedup stream that dies between
// its HasBatch pins and its Commit must give the pinned references
// back — otherwise every aborted backup pins its chunks against
// reclamation forever.
func TestAbortedDedupStreamReleasesPins(t *testing.T) {
	srv, err := NewServer(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	spec := chunk.FastCDCSpec(4 << 10)
	c := startSession(t, srv)
	if _, err := c.NegotiateDedup(spec); err != nil {
		t.Fatal(err)
	}
	img := workload.Random(77, 512<<10)
	if _, err := c.BackupDedupBytes("base", img); err != nil {
		t.Fatal(err)
	}
	eng, err := chunk.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var hs []shardstore.Hash
	baseRC := make(map[shardstore.Hash]int64)
	for _, ck := range eng.Split(img) {
		h := dedup.Sum(img[ck.Offset:ck.End()])
		hs = append(hs, h)
		baseRC[h] = srv.Store().Refcount(h)
	}

	// A second stream pins everything, then its connection dies before
	// Commit.
	conn, br, errc := rawSession(t, srv)
	if err := writeFrame(conn, MsgHello, encodeHello(ProtocolVersion, spec)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readFrame(br, nil); err != nil || typ != MsgAccept {
		t.Fatalf("hello reply %d, %v", typ, err)
	}
	if err := writeFrame(conn, MsgBeginDedup, encodeBeginDedup(ProtocolVersion, "doomed", obs.SpanContext{})); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, MsgHasBatch, encodeHasBatch(hs)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(br, nil)
	if err != nil || typ != MsgNeedBatch {
		t.Fatalf("need reply %d, %v", typ, err)
	}
	if need, err := decodeNeedBatch(payload, len(hs)); err != nil || len(need) != 0 {
		t.Fatalf("fully-present batch still needs %v, %v", need, err)
	}
	// At this instant the pins are held.
	if rc := srv.Store().Refcount(hs[0]); rc != baseRC[hs[0]]+1 {
		t.Fatalf("refcount %d mid-stream, want %d", rc, baseRC[hs[0]]+1)
	}
	conn.Close() // die without Commit
	if serr := <-errc; serr == nil {
		t.Fatal("server session ended cleanly despite dropped connection")
	}
	for i, h := range hs {
		if rc := srv.Store().Refcount(h); rc != baseRC[h] {
			t.Fatalf("chunk %d: refcount %d after abort, want %d back", i, rc, baseRC[h])
		}
	}
	// The release was real: deleting the only committed stream empties
	// the store.
	if _, err := c.Delete("base"); err != nil {
		t.Fatal(err)
	}
	if st := srv.Store().Stats(); st.UniqueChunks != 0 {
		t.Fatalf("store not empty after abort + delete: %+v", st)
	}
}

// TestDeleteResultCodecValidation exercises the decoder's rejection
// paths alongside a round-trip.
func TestDeleteResultCodecValidation(t *testing.T) {
	in := shardstore.DeleteStats{ChunksReleased: 12345, ChunksFreed: 17, BytesFreed: 1 << 40}
	ds, err := decodeDeleteResult(encodeDeleteResult(in))
	if err != nil || ds != in {
		t.Fatalf("round trip %+v, %v", ds, err)
	}
	if _, err := decodeDeleteResult(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := decodeDeleteResult([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := decodeDeleteResult(append(encodeDeleteResult(in), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
