// Package devapi is a CUDA-runtime-style programming interface over
// the simulated device: in-order streams, events, asynchronous memcpys
// and kernel launches (§5.2.1 — the paper's host driver dispatches the
// GPU kernel "in the form of RPCs supported by the CUDA toolkit" and
// overlaps copies with execution via streams).
//
// Operations issued to one stream execute in order; operations in
// different streams overlap, except that all host↔device copies share
// one DMA engine and all kernels share the device — exactly the
// concurrency structure that makes double buffering (§4.1.1) work.
// Everything runs on virtual time; Context.Synchronize drains the work
// and returns the simulated clock.
package devapi

import (
	"errors"
	"time"

	"shredder/internal/gpu"
	"shredder/internal/pcie"
	"shredder/internal/sim"
)

// Context owns the virtual clock and the shared hardware resources.
type Context struct {
	engine *sim.Engine
	spec   gpu.Spec
	link   pcie.Model
	dma    *sim.Resource
	dev    *sim.Resource
	launch time.Duration
}

// NewContext builds a context for one device.
func NewContext(spec gpu.Spec, link pcie.Model) (*Context, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := link.Validate(); err != nil {
		return nil, err
	}
	e := &sim.Engine{}
	return &Context{
		engine: e,
		spec:   spec,
		link:   link,
		dma:    sim.NewResource(e, "dma"),
		dev:    sim.NewResource(e, "device"),
		launch: 25 * time.Microsecond,
	}, nil
}

// future is one operation's completion: it resolves exactly once and
// then releases its waiters.
type future struct {
	done    bool
	at      sim.Time
	waiters []func(sim.Time)
}

func (f *future) wait(fn func(sim.Time)) {
	if f.done {
		fn(f.at)
		return
	}
	f.waiters = append(f.waiters, fn)
}

func (f *future) resolve(at sim.Time) {
	if f.done {
		panic("devapi: future resolved twice")
	}
	f.done = true
	f.at = at
	for _, fn := range f.waiters {
		fn(at)
	}
	f.waiters = nil
}

// resolved returns an already-completed future at time t.
func resolved(t sim.Time) *future { return &future{done: true, at: t} }

// Stream is an in-order execution queue, as in cudaStreamCreate.
type Stream struct {
	ctx  *Context
	tail *future // completion of the most recently enqueued op
}

// NewStream creates an empty stream.
func (c *Context) NewStream() *Stream {
	return &Stream{ctx: c, tail: resolved(c.engine.Now())}
}

// enqueue chains an operation after the stream tail: when the previous
// op (and any extra dependency) completes, service time is submitted to
// the given resource.
func (s *Stream) enqueue(r *sim.Resource, service time.Duration, extra *future) *future {
	f := &future{}
	prev := s.tail
	s.tail = f
	start := func(sim.Time) {
		r.Submit(service, func(_, finish sim.Time) {
			f.resolve(finish)
		})
	}
	if extra == nil {
		prev.wait(start)
		return f
	}
	// Wait for both the stream order and the extra dependency.
	pending := 2
	dec := func(sim.Time) {
		pending--
		if pending == 0 {
			start(0)
		}
	}
	prev.wait(dec)
	extra.wait(dec)
	return f
}

// MemcpyHostToDevice enqueues an asynchronous host→device copy of n
// bytes from the given host buffer kind. Asynchronous copies from
// pageable memory are still legal but stage through the bounce buffer,
// as on real hardware.
func (s *Stream) MemcpyHostToDevice(n int64, kind pcie.BufferKind) {
	s.enqueue(s.ctx.dma, s.ctx.link.TransferTime(n, pcie.HostToDevice, kind), nil)
}

// MemcpyDeviceToHost enqueues the reverse copy.
func (s *Stream) MemcpyDeviceToHost(n int64, kind pcie.BufferKind) {
	s.enqueue(s.ctx.dma, s.ctx.link.TransferTime(n, pcie.DeviceToHost, kind), nil)
}

// Launch enqueues a kernel execution of the given modeled duration.
func (s *Stream) Launch(d time.Duration) {
	if d < 0 {
		panic("devapi: negative kernel time")
	}
	s.enqueue(s.ctx.dev, s.ctx.launch+d, nil)
}

// LaunchChunking enqueues the Shredder chunking kernel over n bytes.
func (s *Stream) LaunchChunking(k *gpu.Kernel, n int64, mode gpu.MemoryMode) {
	s.Launch(k.EstimateTime(n, mode))
}

// Event marks a point in a stream, as in cudaEventRecord.
type Event struct {
	f *future
}

// NewEvent creates an unrecorded event.
func (c *Context) NewEvent() *Event { return &Event{} }

// Record captures the completion of all work enqueued to s so far.
// Recording an event twice is an error (matching the simplest CUDA
// usage; re-create events instead).
func (s *Stream) Record(ev *Event) error {
	if ev.f != nil {
		return errors.New("devapi: event already recorded")
	}
	ev.f = s.tail
	return nil
}

// Wait makes subsequent work on s wait until ev's recorded point has
// completed (cudaStreamWaitEvent). The event must be recorded first.
func (s *Stream) Wait(ev *Event) error {
	if ev.f == nil {
		return errors.New("devapi: waiting on an unrecorded event")
	}
	// A zero-duration operation on a virtual resource enforces the
	// dependency without consuming hardware.
	f := &future{}
	prev := s.tail
	s.tail = f
	pending := 2
	dec := func(sim.Time) {
		pending--
		if pending == 0 {
			f.resolve(s.ctx.engine.Now())
		}
	}
	prev.wait(dec)
	ev.f.wait(dec)
	return nil
}

// CompletedAt returns the event's completion time; valid only after
// Synchronize has drained the work.
func (ev *Event) CompletedAt() (sim.Time, error) {
	if ev.f == nil || !ev.f.done {
		return 0, errors.New("devapi: event not complete")
	}
	return ev.f.at, nil
}

// Synchronize runs the virtual clock until all enqueued work has
// drained and returns the final time (cudaDeviceSynchronize).
func (c *Context) Synchronize() sim.Time {
	return c.engine.Run()
}

// Now returns the current virtual time without draining.
func (c *Context) Now() sim.Time { return c.engine.Now() }

// DMABusy and DeviceBusy expose cumulative resource busy time for
// overlap accounting.
func (c *Context) DMABusy() time.Duration    { return c.dma.BusyTotal() }
func (c *Context) DeviceBusy() time.Duration { return c.dev.BusyTotal() }
