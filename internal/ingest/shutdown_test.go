package ingest

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"shredder/internal/obs"
	"shredder/internal/workload"
)

// TestServeShutdownDrains runs a real listener, completes a backup
// over TCP, closes the listener and asserts Shutdown returns once the
// (already finished) sessions are drained and Serve reports
// net.ErrClosed — the daemon's clean-exit sequence.
func TestServeShutdownDrains(t *testing.T) {
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	data := workload.Random(3, 256<<10)
	if _, err := c.BackupBytes("s", data); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify("s", data); err != nil {
		t.Fatal(err)
	}
	c.Close()

	l.Close()
	if err := <-serveErr; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Serve returned %v, want net.ErrClosed", err)
	}
	done := make(chan struct{})
	go func() { srv.Shutdown(5 * time.Second); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not drain")
	}
}

// TestShutdownForceClosesIdleSession asserts the grace timeout: an
// idle connected client would block a drain forever, so Shutdown must
// force-close it and still return.
func TestShutdownForceClosesIdleSession(t *testing.T) {
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Give Serve a moment to accept and start the session.
	time.Sleep(50 * time.Millisecond)
	l.Close()

	done := make(chan struct{})
	go func() { srv.Shutdown(100 * time.Millisecond); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on an idle session")
	}
}

// TestReadyzFlipsDuringDrain runs the daemon's shutdown sequence
// against a live admin endpoint: /readyz serves 200 while accepting,
// flips to 503 the moment the drain begins (before Shutdown has even
// finished waiting out an active session), and /healthz stays 200
// throughout — liveness and readiness must diverge during a drain.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Obs = reg
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()

	adm := obs.NewAdmin(reg, nil)
	web := httptest.NewServer(adm)
	defer web.Close()
	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d while serving, want 200", got)
	}

	// An idle session keeps the drain in flight while we probe.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(50 * time.Millisecond)

	// The daemon's SIGTERM sequence: mark draining, close the listener,
	// then Shutdown.
	adm.SetDraining(true)
	l.Close()
	shutdownDone := make(chan struct{})
	go func() { srv.Shutdown(2 * time.Second); close(shutdownDone) }()

	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d during drain, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d during drain, want 200 (process is alive)", got)
	}

	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d after drain, want 503", got)
	}
}
