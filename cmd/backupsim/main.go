// Command backupsim runs the cloud-backup case study (§7): it backs up
// a master VM image and a sequence of snapshots with configurable
// segment churn, using either the Shredder GPU pipeline or the pthreads
// CPU baseline, and reports per-snapshot bandwidth and dedup.
//
//	backupsim [-image MiB] [-snapshots N] [-prob p] [-engine gpu|cpu] [-seed N]
//
// With -server it instead acts as a shredderd client: the same image
// series is streamed over TCP to the daemon, which chunks and dedups it
// server-side and reports per-stream statistics. -chunker negotiates
// the session's chunking engine (fastcdc, or the server-default rabin).
//
//	backupsim -server host:9323 [-chunker rabin|fastcdc] [-avg KiB]
//	          [-image MiB] [-snapshots N] [-prob p] [-seed N] [-name prefix]
//
// With -data it simulates a server restart: the series is ingested by
// an in-process shredderd backed by a durable data directory
// (internal/persist), the store is closed, reopened from disk, and
// every stream is verified to restore byte-exactly with the dedup
// statistics preserved.
//
//	backupsim -data DIR [-fsync policy] [-image MiB] [-snapshots N] [-prob p] [-seed N] [-name prefix]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"shredder/internal/backup"
	"shredder/internal/chunk"
	"shredder/internal/ingest"
	"shredder/internal/persist"
	"shredder/internal/stats"
	"shredder/internal/workload"
)

func main() {
	imageMB := flag.Int("image", 64, "image size in MiB")
	snapshots := flag.Int("snapshots", 3, "number of snapshots to back up")
	prob := flag.Float64("prob", 0.1, "per-segment change probability")
	engineName := flag.String("engine", "gpu", "chunking engine: gpu or cpu")
	seed := flag.Int64("seed", 7, "workload seed")
	server := flag.String("server", "", "shredderd address; when set, stream to the service instead of simulating locally")
	data := flag.String("data", "", "data directory; when set, run the durable server-restart round-trip locally")
	fsyncFlag := flag.String("fsync", "always", "fsync policy with -data: always, never, interval[=D], or a duration")
	name := flag.String("name", "vm", "stream name prefix in service mode")
	chunkerName := flag.String("chunker", "rabin", "chunking engine to negotiate with -server/-data: rabin (no negotiation, server default) or fastcdc")
	avgKiB := flag.Int("avg", 4, "fastcdc target chunk size in KiB (power of two), with -chunker=fastcdc")
	flag.Parse()

	if *server != "" || *data != "" {
		// Chunking happens server-side in service mode; an explicit
		// -engine would be silently meaningless, so reject it.
		engineSet := false
		flag.Visit(func(f *flag.Flag) { engineSet = engineSet || f.Name == "engine" })
		if engineSet {
			fmt.Fprintln(os.Stderr, "backupsim: -engine has no effect with -server/-data (the daemon chunks server-side)")
			os.Exit(2)
		}
	}
	if *server != "" && *data != "" {
		fmt.Fprintln(os.Stderr, "backupsim: -server and -data are mutually exclusive")
		os.Exit(2)
	}
	spec, err := sessionSpec(*chunkerName, *avgKiB<<10)
	if err != nil {
		fmt.Fprintln(os.Stderr, "backupsim:", err)
		os.Exit(2)
	}
	if spec != nil && *server == "" && *data == "" {
		fmt.Fprintln(os.Stderr, "backupsim: -chunker only applies with -server/-data (the local simulation is the paper's GPU Rabin study)")
		os.Exit(2)
	}
	if *server != "" {
		if err := runClient(*server, *name, spec, *imageMB<<20, *snapshots, *prob, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "backupsim:", err)
			os.Exit(1)
		}
		return
	}
	if *data != "" {
		if err := runRestart(*data, *fsyncFlag, *name, spec, *imageMB<<20, *snapshots, *prob, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "backupsim:", err)
			os.Exit(1)
		}
		return
	}

	engine := backup.ShredderGPU
	if *engineName == "cpu" {
		engine = backup.PthreadsCPU
	} else if *engineName != "gpu" {
		fmt.Fprintln(os.Stderr, "backupsim: engine must be gpu or cpu")
		os.Exit(2)
	}

	if err := run(*imageMB<<20, *snapshots, *prob, engine, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "backupsim:", err)
		os.Exit(1)
	}
}

// sessionSpec maps the -chunker/-avg flags to the spec to negotiate,
// or nil for the legacy no-negotiation session.
func sessionSpec(algoName string, avg int) (*chunk.Spec, error) {
	algo, err := chunk.ParseAlgo(algoName)
	if err != nil {
		return nil, err
	}
	if algo == chunk.AlgoRabin {
		return nil, nil // server default; skip negotiation entirely
	}
	spec := chunk.FastCDCSpec(avg)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// negotiateIfSet proposes spec on the session when one was requested.
func negotiateIfSet(c *ingest.Client, spec *chunk.Spec) error {
	if spec == nil {
		return nil
	}
	accepted, err := c.Negotiate(*spec)
	if err != nil {
		return err
	}
	fmt.Printf("negotiated %s engine (avg %s, min %s, max %s)\n",
		accepted.Algo, stats.Bytes(int64(accepted.AvgSize)),
		stats.Bytes(int64(accepted.MinSize)), stats.Bytes(int64(accepted.MaxSize)))
	return nil
}

// runClient streams the image series to a shredderd daemon and verifies
// every stream restores byte-exactly over the wire.
func runClient(addr, prefix string, spec *chunk.Spec, size, snapshots int, prob float64, seed int64) error {
	c, err := ingest.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := negotiateIfSet(c, spec); err != nil {
		return err
	}
	im := workload.NewImage(seed, size, 64<<10, prob)

	push := func(name string, data []byte) error {
		st, err := c.BackupBytes(name, data)
		if err != nil {
			return err
		}
		if err := c.Verify(name, data); err != nil {
			return err
		}
		fmt.Printf("%s: %s in %d chunks, %d dup, ratio %.2fx, restore verified; store %s stored of %s (%.2fx)\n",
			name, stats.Bytes(st.Bytes), st.Chunks, st.DupChunks, st.DedupRatio(),
			stats.Bytes(st.Store.StoredBytes), stats.Bytes(st.Store.LogicalBytes), st.Store.Ratio())
		return nil
	}

	if err := push(prefix+"-master", im.Master); err != nil {
		return err
	}
	for i := 1; i <= snapshots; i++ {
		if err := push(fmt.Sprintf("%s-snapshot-%d", prefix, i), im.Snapshot(seed+int64(i))); err != nil {
			return err
		}
	}
	return nil
}

// runRestart is the durability round-trip: ingest the series into an
// in-process persist-backed server, close the store (simulating a
// daemon restart), reopen it from the data directory, and verify every
// stream restores byte-exactly with the dedup statistics preserved.
func runRestart(dir, fsyncStr, prefix string, spec *chunk.Spec, size, snapshots int, prob float64, seed int64) error {
	policy, err := persist.ParseFsyncPolicy(fsyncStr)
	if err != nil {
		return err
	}
	opts := persist.Options{Fsync: policy}
	im := workload.NewImage(seed, size, 64<<10, prob)
	streams := map[string][]byte{prefix + "-master": im.Master}
	order := []string{prefix + "-master"}
	for i := 1; i <= snapshots; i++ {
		n := fmt.Sprintf("%s-snapshot-%d", prefix, i)
		streams[n] = im.Snapshot(seed + int64(i))
		order = append(order, n)
	}

	// Phase 1: ingest everything through the service path, then close.
	store, err := persist.OpenStore(dir, opts)
	if err != nil {
		return err
	}
	srv, err := ingest.NewServerWithStore(ingest.DefaultConfig(), store)
	if err != nil {
		store.Close()
		return err
	}
	c := dialInProcess(srv)
	if err := negotiateIfSet(c, spec); err != nil {
		store.Close()
		return err
	}
	for _, n := range order {
		st, err := c.BackupBytes(n, streams[n])
		if err != nil {
			store.Close()
			return err
		}
		fmt.Printf("%s: %s in %d chunks, %d dup, ratio %.2fx\n",
			n, stats.Bytes(st.Bytes), st.Chunks, st.DupChunks, st.DedupRatio())
	}
	c.Close()
	before := store.Stats()
	if err := store.Close(); err != nil {
		return err
	}
	fmt.Printf("closed store: %s stored of %s logical (%.2fx); restarting from %s\n",
		stats.Bytes(before.StoredBytes), stats.Bytes(before.LogicalBytes), before.Ratio(), dir)

	// Phase 2: reopen from disk and verify.
	store, err = persist.OpenStore(dir, opts)
	if err != nil {
		return err
	}
	defer store.Close()
	if after := store.Stats(); after != before {
		return fmt.Errorf("recovered stats %+v differ from pre-restart %+v", after, before)
	}
	srv, err = ingest.NewServerWithStore(ingest.DefaultConfig(), store)
	if err != nil {
		return err
	}
	c = dialInProcess(srv)
	defer c.Close()
	for _, n := range order {
		if err := c.Verify(n, streams[n]); err != nil {
			return fmt.Errorf("after restart, %s: %w", n, err)
		}
	}
	fmt.Printf("restart verified: %d streams restored byte-exactly, stats preserved %+v\n",
		len(order), before)
	return nil
}

// dialInProcess connects a client to the server over an in-memory pipe.
func dialInProcess(srv *ingest.Server) *ingest.Client {
	cend, send := net.Pipe()
	go func() {
		defer send.Close()
		_ = srv.ServeConn(send)
	}()
	return ingest.NewClient(cend)
}

func run(size, snapshots int, prob float64, engine backup.Engine, seed int64) error {
	srv, err := backup.NewServer(backup.DefaultConfig())
	if err != nil {
		return err
	}
	im := workload.NewImage(seed, size, 64<<10, prob)

	rep, err := srv.Backup("master", im.Master, engine)
	if err != nil {
		return err
	}
	fmt.Printf("master: %s at %s (all unique)\n", stats.Bytes(rep.Bytes), stats.Gbps(rep.Bandwidth))

	for i := 1; i <= snapshots; i++ {
		name := fmt.Sprintf("snapshot-%d", i)
		snap := im.Snapshot(seed + int64(i))
		rep, err := srv.Backup(name, snap, engine)
		if err != nil {
			return err
		}
		if err := srv.VerifyRestore(name, snap); err != nil {
			return err
		}
		fmt.Printf("%s: %s at %s, %.0f%% duplicate chunks, dedup %.1fx, restore verified\n",
			name, stats.Bytes(rep.Bytes), stats.Gbps(rep.Bandwidth),
			float64(rep.DupChunks)/float64(rep.Chunks)*100, rep.DedupRatio())
	}
	st := srv.SiteStats()
	fmt.Printf("backup site: %s logical, %s stored, ratio %.2fx [engine %v]\n",
		stats.Bytes(st.LogicalBytes), stats.Bytes(st.StoredBytes), st.Ratio(), engine)
	return nil
}
