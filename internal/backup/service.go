package backup

import (
	"fmt"
	"net"
	"sync"

	"shredder/internal/chunk"
	"shredder/internal/dedup"
	"shredder/internal/ingest"
	"shredder/internal/shardstore"
)

// Service runs the consolidated backup through the shredderd service
// layer instead of the in-process store: the same chunking parameters
// as Server, but matching and storage happen in a sharded
// concurrency-safe store behind the ingest protocol, so many VM
// streams can be backed up at once. Chunk boundaries are bit-identical
// to the in-process path, so the dedup accounting is too.
type Service struct {
	srv *ingest.Server
}

// NewService builds the service-path backup server with the given
// shard count (0 means the shardstore default).
func NewService(cfg Config, shards int) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc := cfg.Shredder
	sc.Chunking = chunk.RabinSpec(cfg.Chunking)
	srv, err := ingest.NewServer(ingest.Config{Shards: shards, Shredder: sc})
	if err != nil {
		return nil, err
	}
	return &Service{srv: srv}, nil
}

// Ingest exposes the underlying ingest server (to serve real TCP
// listeners).
func (s *Service) Ingest() *ingest.Server { return s.srv }

// SiteStats mirrors Server.SiteStats for the service path.
func (s *Service) SiteStats() dedup.Stats { return s.srv.Store().Stats() }

// Dial opens one client session over an in-memory pipe. Tests and
// same-process experiments use this; production clients dial the
// shredderd daemon over TCP instead.
func (s *Service) Dial() *ingest.Session {
	cend, send := net.Pipe()
	go func() {
		defer send.Close()
		_ = s.srv.ServeConn(send)
	}()
	return ingest.NewSession(cend)
}

// DialDedup opens a session negotiated for two-phase content-addressed
// ingest (protocol version 3) with the service's own chunking spec, so
// BackupDedup cuts bit-identical boundaries to the service's raw path.
// This is the routing entry point for dedup clients: the paper's
// backup-site case, where only missing chunk bodies should cross the
// link.
func (s *Service) DialDedup() (*ingest.Session, error) {
	c := s.Dial()
	if _, err := c.NegotiateDedup(s.srv.Config().Shredder.Chunking); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Expire deletes a backed-up stream through the service path: the
// recipe is durably tombstoned and its chunk references released, so
// the freed space is reclaimable by the store's compactor. This is the
// retention entry point for the consolidated backup site — each
// snapshot generation expires here when its retention window closes.
func (s *Service) Expire(name string) (shardstore.DeleteStats, error) {
	c, err := s.DialDedup()
	if err != nil {
		return shardstore.DeleteStats{}, err
	}
	defer c.Close()
	ds, err := c.Delete(name)
	if err != nil {
		return shardstore.DeleteStats{}, err
	}
	return *ds, nil
}

// Compact reclaims dead container space in the service's store:
// containers whose live fraction fell below threshold are rewritten
// and dropped.
func (s *Service) Compact(threshold float64) (shardstore.CompactStats, error) {
	return s.srv.Store().Compact(threshold)
}

// VMResult is one stream's outcome in a MultiVM run.
type VMResult struct {
	Name  string
	Stats ingest.StreamStats
}

// MultiVM runs the §7.2 consolidated multi-VM experiment through the
// service path: every image is backed up on its own concurrent client
// session and verified to restore byte-exactly. Results come back in
// input order.
func (s *Service) MultiVM(names []string, images [][]byte) ([]VMResult, error) {
	return s.multiVM(names, images, false)
}

// MultiVMDedup is MultiVM over two-phase content-addressed sessions:
// every VM stream is chunked client-side and only missing chunk bodies
// cross the (in-memory) wire, so each result's Stats.Wire shows the
// transfer the backup-site link was spared.
func (s *Service) MultiVMDedup(names []string, images [][]byte) ([]VMResult, error) {
	return s.multiVM(names, images, true)
}

func (s *Service) multiVM(names []string, images [][]byte, dedupWire bool) ([]VMResult, error) {
	if len(names) != len(images) {
		return nil, fmt.Errorf("backup: %d names for %d images", len(names), len(images))
	}
	results := make([]VMResult, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c *ingest.Session
			var err error
			if dedupWire {
				if c, err = s.DialDedup(); err != nil {
					errs[i] = fmt.Errorf("dial dedup for %q: %w", names[i], err)
					return
				}
			} else {
				c = s.Dial()
			}
			defer c.Close()
			var st *ingest.StreamStats
			if dedupWire {
				st, err = c.BackupDedupBytes(names[i], images[i])
			} else {
				st, err = c.BackupBytes(names[i], images[i])
			}
			if err != nil {
				errs[i] = fmt.Errorf("backup %q: %w", names[i], err)
				return
			}
			if err := c.Verify(names[i], images[i]); err != nil {
				errs[i] = fmt.Errorf("verify %q: %w", names[i], err)
				return
			}
			results[i] = VMResult{Name: names[i], Stats: *st}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
