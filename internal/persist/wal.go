package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"shredder/internal/shardstore"
)

// The write-ahead log is a flat sequence of framed records:
//
//	u32 body length | u32 CRC-32C of body | body
//
// (big-endian). The body's first byte is the record type, the rest is
// the type-specific payload. Integers inside payloads are varints.
// The framing is what makes replay safe: a crash can tear the final
// record (short header, short body, or a CRC that does not match the
// bytes that made it to disk), and the scanner detects all three,
// keeps the clean prefix, and reports where it ends so the file can be
// truncated back to a record boundary.

// Record types.
const (
	// recInsert journals one index insert in a shard WAL: a chunk
	// fingerprint and the container location its bytes were packed at.
	recInsert byte = iota + 1
	// recRefDelta journals a reference-count change for an existing
	// entry: +1 per duplicate hit or pin, -1 per recipe-delete
	// release. Replay drops an entry whose count reaches zero.
	recRefDelta
	// recRecipe journals one named stream recipe in the store-level
	// recipe log.
	recRecipe
	// recRelocate journals a compaction move in a shard WAL: an
	// existing entry's bytes were re-packed at a new container
	// location. Replay re-points the entry; the refcount is untouched.
	recRelocate
	// recRecipeDelete journals a recipe tombstone in the store-level
	// recipe log: replay removes the name.
	recRecipeDelete
)

// recHeaderSize frames every record: u32 body length + u32 CRC-32C.
const recHeaderSize = 8

// maxRecordSize bounds a single record body. The largest legitimate
// record is a recipe for a huge stream; 64 MiB of refs is ~2M chunks
// per stream, far beyond anything the ingest layer produces.
const maxRecordSize = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTornRecord marks the clean end of a WAL: the bytes past this
// point are an incomplete or corrupt final record, not usable state.
var errTornRecord = errors.New("persist: torn WAL record")

// appendRecord frames body onto dst.
func appendRecord(dst, body []byte) []byte {
	var hdr [recHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	return append(append(dst, hdr[:]...), body...)
}

// readRecord decodes the record at the front of p, returning its body
// and total framed size. It returns errTornRecord when p holds only a
// prefix of a record or the CRC does not match.
func readRecord(p []byte) (body []byte, size int, err error) {
	if len(p) < recHeaderSize {
		return nil, 0, errTornRecord
	}
	n := binary.BigEndian.Uint32(p[0:4])
	if n > maxRecordSize {
		return nil, 0, errTornRecord
	}
	size = recHeaderSize + int(n)
	if len(p) < size {
		return nil, 0, errTornRecord
	}
	body = p[recHeaderSize:size]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(p[4:8]) {
		return nil, 0, errTornRecord
	}
	return body, size, nil
}

// scanRecords walks every intact record in p in order, calling fn with
// each body. It returns the length of the clean prefix: the offset the
// file should be truncated to if anything past it is torn. fn may
// reject a record (replay found it inconsistent with the containers on
// disk); scanning stops there and the record is excluded from the
// prefix, exactly as if it were torn.
func scanRecords(p []byte, fn func(body []byte) error) (clean int, err error) {
	off := 0
	for off < len(p) {
		body, size, rerr := readRecord(p[off:])
		if rerr != nil {
			return off, nil
		}
		if ferr := fn(body); ferr != nil {
			if errors.Is(ferr, errTornRecord) {
				return off, nil
			}
			return off, ferr
		}
		off += size
	}
	return off, nil
}

// swapJournal atomically replaces the journal at path with buf — the
// checkpoint/rewrite commit protocol shared by the shard WAL and the
// recipe log: buf is written to path+".tmp" and fsynced, the old
// handle is closed, the temp file renamed over the journal, the
// directory fsynced, and the fresh journal reopened. A crash at any
// byte leaves either the old journal intact or the new one complete
// (the rename is the commit point; leftover .tmp files are removed at
// open). On error, failStop reports whether the old handle was
// already closed — the caller must then stop journal writes with the
// returned error rather than continue against a dead handle.
func swapJournal(dir, path string, old *os.File, buf []byte) (f *os.File, failStop bool, err error) {
	tmpPath := path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, false, err
	}
	if _, err := tmp.Write(buf); err != nil {
		_ = tmp.Close()
		return nil, false, err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return nil, false, err
	}
	if err := tmp.Close(); err != nil {
		return nil, false, err
	}
	if err := old.Close(); err != nil {
		return nil, true, err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return nil, true, err
	}
	if err := syncDir(dir); err != nil {
		return nil, true, err
	}
	f, err = os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, true, err
	}
	return f, false, nil
}

// --- typed payloads ---

// encodeLocated frames the shared insert/relocate payload shape: a
// fingerprint plus the container location its bytes live at. The shard
// is implied by which shard's WAL holds the record.
func encodeLocated(typ byte, h shardstore.Hash, container int, offset, length int64) []byte {
	body := make([]byte, 0, 1+len(h)+3*binary.MaxVarintLen64)
	body = append(body, typ)
	body = append(body, h[:]...)
	body = binary.AppendUvarint(body, uint64(container))
	body = binary.AppendUvarint(body, uint64(offset))
	body = binary.AppendUvarint(body, uint64(length))
	return body
}

func decodeLocated(body []byte) (h shardstore.Hash, container int, offset, length int64, err error) {
	p := body[1:]
	if len(p) < len(h) {
		return h, 0, 0, 0, fmt.Errorf("persist: located record body %d bytes, need %d", len(body), 1+len(h))
	}
	copy(h[:], p)
	p = p[len(h):]
	var u [3]uint64
	for i := range u {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return h, 0, 0, 0, errors.New("persist: located record truncated varint")
		}
		u[i] = v
		p = p[n:]
	}
	if len(p) != 0 {
		return h, 0, 0, 0, errors.New("persist: located record trailing bytes")
	}
	return h, int(u[0]), int64(u[1]), int64(u[2]), nil
}

// encodeInsert journals h stored at (container, offset, length).
func encodeInsert(h shardstore.Hash, container int, offset, length int64) []byte {
	return encodeLocated(recInsert, h, container, offset, length)
}

func decodeInsert(body []byte) (shardstore.Hash, int, int64, int64, error) {
	return decodeLocated(body)
}

// encodeRelocate journals a compaction move of h to a new location.
func encodeRelocate(h shardstore.Hash, container int, offset, length int64) []byte {
	return encodeLocated(recRelocate, h, container, offset, length)
}

func decodeRelocate(body []byte) (shardstore.Hash, int, int64, int64, error) {
	return decodeLocated(body)
}

// encodeRefDelta journals a refcount change for h.
func encodeRefDelta(h shardstore.Hash, delta int64) []byte {
	body := make([]byte, 0, 1+len(h)+binary.MaxVarintLen64)
	body = append(body, recRefDelta)
	body = append(body, h[:]...)
	body = binary.AppendVarint(body, delta)
	return body
}

func decodeRefDelta(body []byte) (h shardstore.Hash, delta int64, err error) {
	p := body[1:]
	if len(p) < len(h) {
		return h, 0, fmt.Errorf("persist: refdelta record body %d bytes, need %d", len(body), 1+len(h))
	}
	copy(h[:], p)
	p = p[len(h):]
	v, n := binary.Varint(p)
	if n <= 0 || len(p) != n {
		return h, 0, errors.New("persist: refdelta record malformed varint")
	}
	return h, v, nil
}

// hashLen is the fixed wire size of one fingerprint in a recipe body.
const hashLen = len(shardstore.Hash{})

// encodeRecipe journals one named recipe: name, entry count, then the
// fingerprints back to back. Recipes are content-addressed (hashes,
// not locations), so compaction never has to rewrite them.
func encodeRecipe(name string, r shardstore.Recipe) []byte {
	body := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(name)+len(r)*hashLen)
	body = append(body, recRecipe)
	body = binary.AppendUvarint(body, uint64(len(name)))
	body = append(body, name...)
	body = binary.AppendUvarint(body, uint64(len(r)))
	for i := range r {
		body = append(body, r[i][:]...)
	}
	return body
}

func decodeRecipe(body []byte) (string, shardstore.Recipe, error) {
	p := body[1:]
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, errors.New("persist: recipe record truncated varint")
		}
		p = p[n:]
		return v, nil
	}
	nameLen, err := uvarint()
	if err != nil {
		return "", nil, err
	}
	if nameLen > uint64(len(p)) {
		return "", nil, errors.New("persist: recipe record truncated name")
	}
	name := string(p[:nameLen])
	p = p[nameLen:]
	count, err := uvarint()
	if err != nil {
		return "", nil, err
	}
	// Bound before multiplying: a hostile count must not wrap the
	// product into agreement (or size a giant allocation).
	if count > uint64(len(p))/uint64(hashLen) || count*uint64(hashLen) != uint64(len(p)) {
		return "", nil, errors.New("persist: recipe record fingerprint count mismatch")
	}
	r := make(shardstore.Recipe, count)
	for i := range r {
		copy(r[i][:], p[uint64(i)*uint64(hashLen):])
	}
	return name, r, nil
}

// encodeRecipeDelete journals a recipe tombstone: the name alone.
func encodeRecipeDelete(name string) []byte {
	body := make([]byte, 0, 1+binary.MaxVarintLen64+len(name))
	body = append(body, recRecipeDelete)
	body = binary.AppendUvarint(body, uint64(len(name)))
	body = append(body, name...)
	return body
}

func decodeRecipeDelete(body []byte) (string, error) {
	p := body[1:]
	nameLen, n := binary.Uvarint(p)
	if n <= 0 {
		return "", errors.New("persist: recipe tombstone truncated varint")
	}
	p = p[n:]
	if nameLen != uint64(len(p)) {
		return "", errors.New("persist: recipe tombstone name length mismatch")
	}
	return string(p), nil
}
