package shredder

import (
	"testing"

	"shredder/internal/chunker"
	"shredder/internal/core"
	"shredder/internal/gpu"
	"shredder/internal/redelim"
	"shredder/internal/workload"
)

// Ablation benchmarks isolate each design decision DESIGN.md calls
// out: the three pipeline optimizations, the kernel micro-
// optimizations (§5.2.2), the allocator strategy (§5.1), and the
// future-work extensions (multi-GPU, GPUDirect, redundancy
// elimination). Each benchmark reports the *simulated* throughput of
// the configuration as a custom metric alongside the usual wall-clock
// numbers.

func ablationShredder(b *testing.B, mutate func(*core.Config)) *core.Shredder {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.BufferSize = 16 << 20
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchPipeline(b *testing.B, mutate func(*core.Config)) {
	s := ablationShredder(b, mutate)
	data := workload.Random(1, 64<<20)
	b.SetBytes(int64(len(data)))
	var simGBps float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := s.ChunkBytes(data, nil)
		if err != nil {
			b.Fatal(err)
		}
		simGBps = rep.Throughput / 1e9
	}
	b.ReportMetric(simGBps, "simGB/s")
}

// BenchmarkAblationBasic is the §3.1 unoptimized pipeline.
func BenchmarkAblationBasic(b *testing.B) {
	benchPipeline(b, func(c *core.Config) { c.Mode = core.Basic })
}

// BenchmarkAblationStreams adds double buffering + the 4-stage
// pipeline (§4.1–4.2).
func BenchmarkAblationStreams(b *testing.B) {
	benchPipeline(b, func(c *core.Config) { c.Mode = core.Streams })
}

// BenchmarkAblationStreamsCoalesced adds memory coalescing (§4.3).
func BenchmarkAblationStreamsCoalesced(b *testing.B) {
	benchPipeline(b, func(c *core.Config) { c.Mode = core.StreamsCoalesced })
}

// BenchmarkAblationPipelineDepth2 restricts the pipeline to two
// admitted buffers (the 2-staged case of Figure 9).
func BenchmarkAblationPipelineDepth2(b *testing.B) {
	benchPipeline(b, func(c *core.Config) {
		c.Mode = core.Streams
		c.PipelineDepth = 2
		c.RingRegions = 2
	})
}

// BenchmarkAblationTwoGPUs splits buffers across two devices (§5.2).
func BenchmarkAblationTwoGPUs(b *testing.B) {
	benchPipeline(b, func(c *core.Config) {
		c.Mode = core.Streams
		c.Devices = 2
		c.PipelineDepth = 8
		c.RingRegions = 8
	})
}

// BenchmarkAblationGPUDirect removes the host staging transfer (§9).
func BenchmarkAblationGPUDirect(b *testing.B) {
	benchPipeline(b, func(c *core.Config) { c.GPUDirect = true })
}

// BenchmarkAblationNoUnrolling disables the §5.2.2 loop-unrolling
// kernel optimization.
func BenchmarkAblationNoUnrolling(b *testing.B) {
	benchPipeline(b, func(c *core.Config) { c.Kernel.UnrolledFingerprint = false })
}

// BenchmarkAblationNoDivergenceOpt disables the §5.2.2 warp-divergence
// restructuring.
func BenchmarkAblationNoDivergenceOpt(b *testing.B) {
	benchPipeline(b, func(c *core.Config) { c.Kernel.DivergenceOptimized = false })
}

// BenchmarkAblationKernelNaiveVsCoalesced reports the raw kernel-model
// ratio (Figure 11's mechanism) without the pipeline around it.
func BenchmarkAblationKernelNaiveVsCoalesced(b *testing.B) {
	chk, err := chunker.New(chunker.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	k, err := gpu.NewKernel(gpu.DefaultKernelConfig(), chk)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		n := int64(256 << 20)
		ratio = k.EstimateTime(n, gpu.NaiveGlobal).Seconds() / k.EstimateTime(n, gpu.Coalesced).Seconds()
	}
	b.ReportMetric(ratio, "coalescing-x")
}

// BenchmarkAblationChunkerSchemes compares real (wall-clock) single-
// thread throughput of the three chunking schemes at ~4 KB targets:
// Rabin CDC, SampleByte sampling, and fixed-size splitting.
func BenchmarkAblationChunkerSchemes(b *testing.B) {
	data := workload.Random(2, 8<<20)
	p := chunker.DefaultParams()
	p.MaskBits = 12
	p.Marker = 1<<12 - 1
	rab, err := chunker.New(p)
	if err != nil {
		b.Fatal(err)
	}
	sam, err := chunker.NewSampleByte(chunker.SampleByteParams{MarkedBytes: 1, SkipAfterMatch: 2048, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rabin", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			rab.Split(data)
		}
	})
	b.Run("samplebyte", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			sam.Split(data)
		}
	})
	b.Run("fixed", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			chunker.FixedSplit(data, 4096)
		}
	})
}

// BenchmarkAblationRedundancyElimination measures the middlebox
// encode/decode path on a stream with 50% retransmissions.
func BenchmarkAblationRedundancyElimination(b *testing.B) {
	p := chunker.DefaultParams()
	p.MaskBits = 11
	p.Marker = 1<<11 - 1
	p.MinSize = 256
	p.MaxSize = 8 << 10
	sender, receiver, err := redelim.NewPair(p, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	payloads := [][]byte{
		workload.Random(4, 256<<10),
		workload.Random(5, 256<<10),
	}
	// Warm the caches so every timed iteration exercises the
	// redundancy-elimination (reference) path.
	for _, pl := range payloads {
		if _, err := receiver.Decode(sender.Encode(pl)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payloads[0]) * 2))
	var savings float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pl := range payloads {
			msgs := sender.Encode(pl)
			if _, err := receiver.Decode(msgs); err != nil {
				b.Fatal(err)
			}
		}
		savings = sender.Stats().Savings()
	}
	b.ReportMetric(savings*100, "saved%")
}
