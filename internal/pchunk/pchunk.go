// Package pchunk is the host-only parallel content-based chunker — the
// paper's pthreads baseline (§5.1). It divides the input into
// fixed-size regions, runs the Rabin chunking algorithm on each region
// in parallel (SPMD), and merges neighboring results; each worker warms
// its sliding window from the preceding Window−1 bytes, so the merged
// boundaries are bit-identical to the sequential reference.
//
// Two allocation strategies mirror the paper's malloc-vs-Hoard
// comparison: Shared funnels every boundary record through one
// lock-guarded arena (the serialization that made the authors adopt
// Hoard), PerWorker gives each worker a private arena merged at the
// end.
package pchunk

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"shredder/internal/chunker"
	"shredder/internal/rabin"
)

// Allocator selects the allocation strategy for boundary records.
type Allocator int

const (
	// Shared appends every boundary to a single mutex-guarded arena,
	// modeling glibc malloc's serialization under concurrency.
	Shared Allocator = iota
	// PerWorker gives each worker its own arena (Hoard-style), merged
	// after the parallel phase.
	PerWorker
)

func (a Allocator) String() string {
	if a == PerWorker {
		return "per-worker"
	}
	return "shared"
}

// Parallel chunks byte streams using multiple goroutines. It is safe
// for concurrent use.
type Parallel struct {
	chk     *chunker.Chunker
	workers int
	alloc   Allocator
}

// New returns a parallel chunker over c with the given worker count
// (0 means GOMAXPROCS) and allocation strategy.
func New(c *chunker.Chunker, workers int, alloc Allocator) (*Parallel, error) {
	if c == nil {
		return nil, fmt.Errorf("pchunk: nil chunker")
	}
	if workers < 0 {
		return nil, fmt.Errorf("pchunk: negative worker count")
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel{chk: c, workers: workers, alloc: alloc}, nil
}

// Workers returns the configured parallelism.
func (p *Parallel) Workers() int { return p.workers }

// boundary pairs a cut position with its fingerprint.
type boundary struct {
	pos int64
	fp  rabin.Poly
}

// Boundaries computes every raw content-defined boundary of data in
// parallel. The result equals chunker.Chunker.Boundaries(data).
func (p *Parallel) Boundaries(data []byte) ([]int64, []rabin.Poly) {
	bs := p.scan(data)
	cuts := make([]int64, len(bs))
	fps := make([]rabin.Poly, len(bs))
	for i, b := range bs {
		cuts[i] = b.pos
		fps[i] = b.fp
	}
	return cuts, fps
}

// Split chunks data with min/max limits applied, equal to the
// sequential Chunker.Split.
func (p *Parallel) Split(data []byte) []chunker.Chunk {
	cuts, fps := p.Boundaries(data)
	return p.chk.ApplyLimits(cuts, fps, int64(len(data)))
}

func (p *Parallel) scan(data []byte) []boundary {
	n := len(data)
	if n == 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	region := (n + workers - 1) / workers
	tab := p.chk.Table()
	win := tab.Size()

	switch p.alloc {
	case Shared:
		// One arena, one lock: every append contends, as with malloc.
		var mu sync.Mutex
		var arena []boundary
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			lo, hi := wi*region, (wi+1)*region
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				p.scanRegion(data, lo, hi, tab, win, func(b boundary) {
					mu.Lock()
					arena = append(arena, b)
					mu.Unlock()
				})
			}(lo, hi)
		}
		wg.Wait()
		// Workers interleave, so the shared arena needs a final sort to
		// restore stream order (part of the merge step in §5.1).
		sort.Slice(arena, func(i, j int) bool { return arena[i].pos < arena[j].pos })
		return arena

	case PerWorker:
		arenas := make([][]boundary, workers)
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			lo, hi := wi*region, (wi+1)*region
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(wi, lo, hi int) {
				defer wg.Done()
				var local []boundary
				p.scanRegion(data, lo, hi, tab, win, func(b boundary) {
					local = append(local, b)
				})
				arenas[wi] = local
			}(wi, lo, hi)
		}
		wg.Wait()
		var out []boundary
		for _, a := range arenas {
			out = append(out, a...)
		}
		return out

	default:
		panic("pchunk: unknown allocator")
	}
}

// scanRegion evaluates positions [lo, hi) with a window warmed from the
// preceding win-1 bytes (the small overlap near partition boundaries
// that §2.1 describes).
func (p *Parallel) scanRegion(data []byte, lo, hi int, tab *rabin.Table, win int, emit func(boundary)) {
	w := rabin.NewWindow(tab)
	warm := lo - (win - 1)
	if warm < 0 {
		warm = 0
	}
	for i := warm; i < lo; i++ {
		w.Slide(data[i])
	}
	for i := lo; i < hi; i++ {
		fp := w.Slide(data[i])
		if w.Full() && p.chk.IsBoundary(fp) {
			emit(boundary{pos: int64(i) + 1, fp: fp})
		}
	}
}
