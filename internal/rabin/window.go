package rabin

// Window is a rolling Rabin fingerprint over a fixed-size window of
// bytes. Sliding the window forward by one byte is O(1) using two
// precomputed 256-entry tables. Window is not safe for concurrent use;
// each goroutine (or simulated GPU lane) owns its own Window, sharing
// the immutable Table.
type Window struct {
	tab    *Table
	buf    []byte
	pos    int
	filled int
	digest Poly
}

// Table holds the precomputed slide tables for one (polynomial, window
// size) pair. A Table is immutable after construction and safe to share
// across any number of Windows.
type Table struct {
	pol  Poly
	size int
	deg  uint
	mask Poly
	// mod[b] = (Poly(b) << deg) mod pol, so that appending a byte needs
	// one shift, one mask and one XOR.
	mod [256]Poly
	// out[b] = (Poly(b) · x^(8·(size−1))) mod pol, the contribution of
	// the byte leaving the window.
	out [256]Poly
}

// NewTable builds the slide tables for the given polynomial and window
// size in bytes. It panics if pol has degree < 9 (the top byte of the
// shifted digest must fit below bit 63) or if size < 1.
func NewTable(pol Poly, size int) *Table {
	if pol.Degree() < 9 || pol.Degree() > 62 {
		panic("rabin: polynomial degree must be in [9, 62]")
	}
	if size < 1 {
		panic("rabin: window size must be at least 1")
	}
	t := &Table{pol: pol, size: size}
	t.deg = uint(pol.Degree())
	t.mask = 1<<t.deg - 1
	for b := 0; b < 256; b++ {
		t.mod[b] = (Poly(b) << t.deg).Mod(pol)
	}
	for b := 0; b < 256; b++ {
		d := Poly(b).Mod(pol)
		for i := 0; i < size-1; i++ {
			d = t.append(d, 0)
		}
		t.out[b] = d
	}
	return t
}

// Polynomial returns the modulus the table was built for.
func (t *Table) Polynomial() Poly { return t.pol }

// Size returns the window size in bytes.
func (t *Table) Size() int { return t.size }

// append multiplies d by x^8, adds b, and reduces mod t.pol. d must
// already be reduced.
func (t *Table) append(d Poly, b byte) Poly {
	top := d >> (t.deg - 8) // d is reduced, so top < 256
	return (d<<8|Poly(b))&t.mask ^ t.mod[top]
}

// Fingerprint returns the fingerprint of data directly, as if a window
// of len(data) had been slid over it. It is the reference the rolling
// implementation is tested against.
func (t *Table) Fingerprint(data []byte) Poly {
	var d Poly
	for _, b := range data {
		d = t.append(d, b)
	}
	return d
}

// NewWindow returns a rolling window over t, initially empty.
func NewWindow(t *Table) *Window {
	return &Window{tab: t, buf: make([]byte, t.size)}
}

// Reset returns the window to its initial empty state.
func (w *Window) Reset() {
	w.digest = 0
	w.pos = 0
	w.filled = 0
	for i := range w.buf {
		w.buf[i] = 0
	}
}

// Slide pushes b into the window, evicting the oldest byte once the
// window is full, and returns the fingerprint of the current window
// contents.
func (w *Window) Slide(b byte) Poly {
	old := w.buf[w.pos]
	w.buf[w.pos] = b
	w.pos++
	if w.pos == len(w.buf) {
		w.pos = 0
	}
	if w.filled < len(w.buf) {
		w.filled++
	} else {
		w.digest ^= w.tab.out[old]
	}
	w.digest = w.tab.append(w.digest, b)
	return w.digest
}

// Digest returns the fingerprint of the current window contents.
func (w *Window) Digest() Poly { return w.digest }

// Full reports whether the window has seen at least Size bytes.
func (w *Window) Full() bool { return w.filled == len(w.buf) }
