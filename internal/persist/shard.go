package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"shredder/internal/dedup"
	"shredder/internal/shardstore"
)

// diskShard is one stripe of the durable backing: an append-only set
// of container files plus a write-ahead log, both under
// <data>/shard-NNNN/. Chunk bytes are written to the open container
// first, then the index insert is journaled, so a WAL record never
// survives a crash that lost its bytes without recovery noticing (the
// record's range falls past the container's end and replay stops
// there).
type diskShard struct {
	id            int
	dir           string
	containerSize int64
	always        bool // FsyncAlways: fsync at every Commit
	verify        bool // re-hash every chunk during Recover

	mu         sync.Mutex // guards all fields below
	wal        *os.File
	walSize    int64  // bytes durably framed so far
	walBuf     []byte // records staged since the last Commit
	walDirty   bool   // WAL has writes not yet fsynced
	containers []*containerFile
	recovered  bool
	// present mirrors the fingerprints with a live index entry
	// (recovered at open plus appended since), for Backing.Missing.
	present map[shardstore.Hash]struct{}
}

// containerFile is one append-only container on disk.
type containerFile struct {
	f     *os.File
	size  int64
	dirty bool // has writes not yet fsynced
}

const (
	walName         = "wal"
	containerFormat = "c-%06d.dat"
)

func newDiskShard(dir string, id int, containerSize int64, always, verify bool) *diskShard {
	return &diskShard{
		id:            id,
		dir:           filepath.Join(dir, fmt.Sprintf("shard-%04d", id)),
		containerSize: containerSize,
		always:        always,
		verify:        verify,
	}
}

// Recover opens the shard's files and replays the WAL against them:
// inserts are validated against the container bytes actually on disk,
// a torn or inconsistent tail is cut off (WAL truncated to the last
// clean record, containers truncated to the last journaled byte), and
// fn is called once per surviving index entry.
func (s *diskShard) Recover(fn func(h shardstore.Hash, ref shardstore.Ref, refcount int64) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovered {
		return fmt.Errorf("persist: shard %d recovered twice", s.id)
	}
	s.recovered = true
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	if err := s.openContainers(); err != nil {
		return err
	}
	wal, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.wal = wal
	raw, err := os.ReadFile(filepath.Join(s.dir, walName))
	if err != nil {
		return err
	}

	index := make(map[shardstore.Hash]shardstore.Ref)
	refcount := make(map[shardstore.Hash]int64)
	// watermarks[i] is the highest journaled byte of container i; bytes
	// past it were written but never made it into the surviving WAL
	// prefix, so they are cut off below.
	watermarks := make([]int64, len(s.containers))
	clean, err := scanRecords(raw, func(body []byte) error {
		if len(body) == 0 {
			return errTornRecord
		}
		switch body[0] {
		case recInsert:
			h, ci, off, length, derr := decodeInsert(body)
			if derr != nil {
				return errTornRecord
			}
			if ci < 0 || ci >= len(s.containers) || off < 0 || length < 0 ||
				off+length > s.containers[ci].size {
				// The record refers to bytes that never reached the
				// container file: the tail of history is lost.
				return errTornRecord
			}
			if _, dup := index[h]; dup {
				return errTornRecord
			}
			if s.verify {
				// Re-hash the chunk: catches bytes the filesystem lost
				// in ways the size check cannot see (zero-filled pages
				// after power loss under relaxed fsync).
				buf := make([]byte, length)
				if _, rerr := s.containers[ci].f.ReadAt(buf, off); rerr != nil {
					return errTornRecord
				}
				if dedup.Sum(buf) != h {
					return errTornRecord
				}
			}
			index[h] = shardstore.Ref{Shard: s.id, Container: ci, Offset: off, Length: length}
			refcount[h] = 1
			if off+length > watermarks[ci] {
				watermarks[ci] = off + length
			}
		case recRefDelta:
			h, delta, derr := decodeRefDelta(body)
			if derr != nil {
				return errTornRecord
			}
			if _, ok := index[h]; !ok {
				return errTornRecord
			}
			refcount[h] += delta
			if refcount[h] < 1 {
				// A future GC decrement released the entry; the bytes
				// stay until compaction reclaims them.
				delete(index, h)
				delete(refcount, h)
			}
		default:
			return errTornRecord
		}
		return nil
	})
	if err != nil {
		return err
	}
	if int64(clean) < int64(len(raw)) {
		if err := s.wal.Truncate(int64(clean)); err != nil {
			return err
		}
	}
	s.walSize = int64(clean)
	for i, cf := range s.containers {
		if cf.size > watermarks[i] {
			if err := cf.f.Truncate(watermarks[i]); err != nil {
				return err
			}
			cf.size = watermarks[i]
		}
	}
	s.present = make(map[shardstore.Hash]struct{}, len(index))
	for h, ref := range index {
		s.present[h] = struct{}{}
		if err := fn(h, ref, refcount[h]); err != nil {
			return err
		}
	}
	return nil
}

// has reports whether the shard holds a chunk for h.
func (s *diskShard) has(h shardstore.Hash) bool {
	s.mu.Lock()
	_, ok := s.present[h]
	s.mu.Unlock()
	return ok
}

// openContainers opens every existing container file in order,
// verifying the sequence c-000000, c-000001, ... is contiguous.
func (s *diskShard) openContainers() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		var n int
		if !e.IsDir() {
			if _, err := fmt.Sscanf(e.Name(), containerFormat, &n); err == nil {
				names = append(names, e.Name())
			}
		}
	}
	sort.Strings(names)
	for i, name := range names {
		if want := fmt.Sprintf(containerFormat, i); name != want {
			return fmt.Errorf("persist: shard %d containers not contiguous: have %s, want %s", s.id, name, want)
		}
		f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		s.containers = append(s.containers, &containerFile{f: f, size: st.Size()})
	}
	return nil
}

// Append packs data into the open container (rolling when full) and
// stages the insert record; both become durable at the next Commit
// under the shard's fsync policy.
func (s *diskShard) Append(h shardstore.Hash, data []byte) (int, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := len(s.containers) - 1
	if cur < 0 || s.containers[cur].size+int64(len(data)) > s.containerSize {
		f, err := os.OpenFile(
			filepath.Join(s.dir, fmt.Sprintf(containerFormat, len(s.containers))),
			os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			return 0, 0, err
		}
		if s.always {
			if err := syncDir(s.dir); err != nil {
				f.Close()
				return 0, 0, err
			}
		}
		s.containers = append(s.containers, &containerFile{f: f})
		cur = len(s.containers) - 1
	}
	cf := s.containers[cur]
	if _, err := cf.f.WriteAt(data, cf.size); err != nil {
		// cf.size is not advanced: the partial bytes sit past the
		// watermark and are invisible to reads and recovery.
		return 0, 0, err
	}
	off := cf.size
	cf.size += int64(len(data))
	cf.dirty = true
	s.walBuf = appendRecord(s.walBuf, encodeInsert(h, cur, off, int64(len(data))))
	s.present[h] = struct{}{}
	return cur, off, nil
}

// LogRefDelta stages a refcount-change record.
func (s *diskShard) LogRefDelta(h shardstore.Hash, delta int64) error {
	s.mu.Lock()
	s.walBuf = appendRecord(s.walBuf, encodeRefDelta(h, delta))
	s.mu.Unlock()
	return nil
}

// Commit writes the staged WAL records through to the kernel and, under
// FsyncAlways, fsyncs the dirty container files and the WAL (data
// before journal, so a synced record always has its bytes).
func (s *diskShard) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if s.always {
		return s.fsyncLocked()
	}
	return nil
}

// flushLocked writes staged records to the WAL file.
func (s *diskShard) flushLocked() error {
	if len(s.walBuf) == 0 {
		return nil
	}
	if _, err := s.wal.WriteAt(s.walBuf, s.walSize); err != nil {
		// walSize is not advanced: the next flush rewrites the region
		// and recovery ignores any torn tail it may have left.
		return err
	}
	s.walSize += int64(len(s.walBuf))
	s.walBuf = s.walBuf[:0]
	s.walDirty = true
	return nil
}

// fsyncLocked syncs every dirty file, containers first.
func (s *diskShard) fsyncLocked() error {
	for _, cf := range s.containers {
		if cf.dirty {
			if err := cf.f.Sync(); err != nil {
				return err
			}
			cf.dirty = false
		}
	}
	if s.walDirty {
		if err := s.wal.Sync(); err != nil {
			return err
		}
		s.walDirty = false
	}
	return nil
}

// sync flushes and fsyncs everything (the interval ticker, Sync and
// Close path).
func (s *diskShard) sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.fsyncLocked()
}

// Read returns the bytes at a stored location via positional read.
func (s *diskShard) Read(container int, offset, length int64) ([]byte, error) {
	s.mu.Lock()
	if container < 0 || container >= len(s.containers) {
		s.mu.Unlock()
		return nil, fmt.Errorf("persist: shard %d container %d out of range", s.id, container)
	}
	cf := s.containers[container]
	if offset < 0 || length < 0 || offset+length > cf.size {
		s.mu.Unlock()
		return nil, fmt.Errorf("persist: shard %d range [%d, %d) outside container %d", s.id, offset, offset+length, container)
	}
	s.mu.Unlock()
	buf := make([]byte, length)
	if _, err := cf.f.ReadAt(buf, offset); err != nil {
		return nil, err
	}
	return buf, nil
}

// Containers reports how many containers the shard has opened.
func (s *diskShard) Containers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.containers)
}

// close syncs and releases the shard's files.
func (s *diskShard) close() error {
	err := s.sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cf := range s.containers {
		if cerr := cf.f.Close(); err == nil {
			err = cerr
		}
	}
	s.containers = nil
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
		s.wal = nil
	}
	return err
}

// syncDir fsyncs a directory so a just-created file's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

var _ shardstore.ShardBacking = (*diskShard)(nil)

// errClosed reports use after Close.
var errClosed = errors.New("persist: backing is closed")
