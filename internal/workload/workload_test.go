package workload

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRandomDeterministic(t *testing.T) {
	a := Random(7, 1024)
	b := Random(7, 1024)
	if !bytes.Equal(a, b) {
		t.Fatal("Random not deterministic")
	}
	c := Random(8, 1024)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds gave identical data")
	}
}

func TestTextShape(t *testing.T) {
	data := Text(1, 10000)
	if len(data) != 10000 {
		t.Fatalf("length %d, want 10000", len(data))
	}
	lines := strings.Split(strings.TrimRight(string(Text(1, 5000)), "\n"), "\n")
	for _, l := range lines[:len(lines)-1] { // last line may be truncated
		n := len(strings.Fields(l))
		if n < 6 || n > 12 {
			t.Fatalf("line has %d words: %q", n, l)
		}
	}
	if !bytes.Equal(Text(3, 2000), Text(3, 2000)) {
		t.Fatal("Text not deterministic")
	}
}

func TestPointsParseable(t *testing.T) {
	data := Points(2, 100, 4)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 100 {
		t.Fatalf("%d lines, want 100", len(lines))
	}
	for _, l := range lines {
		parts := strings.Fields(l)
		if len(parts) != 2 {
			t.Fatalf("bad point record %q", l)
		}
		for _, p := range parts {
			if _, err := strconv.ParseFloat(p, 64); err != nil {
				t.Fatalf("unparseable coordinate %q: %v", p, err)
			}
		}
	}
}

func TestMutateReplace(t *testing.T) {
	data := Random(3, 1<<20)
	for _, pct := range []float64{1, 5, 25} {
		mod := MutateReplace(data, 42, pct)
		if len(mod) != len(data) {
			t.Fatal("replace changed length")
		}
		frac := ChangedFraction(data, mod) * 100
		if frac < pct*0.8 || frac > pct*2.5 {
			t.Fatalf("requested %v%% change, measured %.2f%%", pct, frac)
		}
	}
	zero := MutateReplace(data, 42, 0)
	if !bytes.Equal(zero, data) {
		t.Fatal("0%% mutation changed data")
	}
	// Mutation must not alias the input.
	mod := MutateReplace(data, 1, 5)
	mod[0] ^= 1
	if data[0] == mod[0] && &data[0] == &mod[0] {
		t.Fatal("mutation aliases input")
	}
}

func TestMutateInsertDelete(t *testing.T) {
	data := Random(4, 1<<18)
	ins := MutateInsert(data, 5, 10)
	if len(ins) <= len(data) {
		t.Fatal("insert did not grow data")
	}
	grow := float64(len(ins)-len(data)) / float64(len(data)) * 100
	if grow < 8 || grow > 13 {
		t.Fatalf("insert grew by %.1f%%, want ~10%%", grow)
	}
	del := MutateDelete(data, 6, 10)
	if len(del) >= len(data) {
		t.Fatal("delete did not shrink data")
	}
	shrink := float64(len(data)-len(del)) / float64(len(data)) * 100
	if shrink < 5 || shrink > 15 {
		t.Fatalf("delete shrank by %.1f%%, want ~10%%", shrink)
	}
	if !bytes.Equal(MutateInsert(data, 5, 10), ins) {
		t.Fatal("insert not deterministic")
	}
}

func TestImageSnapshot(t *testing.T) {
	im := NewImage(1, 1<<20, 4096, 0.1)
	snapA := im.Snapshot(100)
	snapB := im.Snapshot(100)
	if !bytes.Equal(snapA, snapB) {
		t.Fatal("snapshot not deterministic")
	}
	if len(snapA) != len(im.Master) {
		t.Fatal("snapshot length differs from master")
	}
	frac := ChangedFraction(im.Master, snapA)
	if frac < 0.03 || frac > 0.25 {
		t.Fatalf("10%% segment-change probability changed %.1f%% of bytes", frac*100)
	}
	// Probability 0 must change nothing; probability 1 nearly all.
	still := NewImage(2, 1<<18, 4096, 0)
	if !bytes.Equal(still.Snapshot(5), still.Master) {
		t.Fatal("prob 0 changed content")
	}
	churn := NewImage(3, 1<<18, 4096, 1)
	if f := ChangedFraction(churn.Master, churn.Snapshot(5)); f < 0.9 {
		t.Fatalf("prob 1 changed only %.1f%%", f*100)
	}
}

func TestChangedFraction(t *testing.T) {
	if ChangedFraction(nil, nil) != 0 {
		t.Fatal("empty inputs")
	}
	a := []byte{1, 2, 3, 4}
	if f := ChangedFraction(a, a); f != 0 {
		t.Fatalf("identical: %f", f)
	}
	b := []byte{1, 2, 0, 4}
	if f := ChangedFraction(a, b); f != 0.25 {
		t.Fatalf("one of four: %f", f)
	}
	// Length mismatch counts as change.
	if f := ChangedFraction(a, a[:2]); f != 0.5 {
		t.Fatalf("length mismatch: %f", f)
	}
}
