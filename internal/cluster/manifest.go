package cluster

import (
	"encoding/binary"
	"fmt"
	"strings"

	"shredder/internal/dedup"
)

// ReservedPrefix marks stream names the routing layer keeps for
// itself on the nodes. The router refuses client operations on such
// names; in-process callers get the same check from Stream/Restore/
// Delete.
const ReservedPrefix = ".cluster/"

// manifestPrefix namespaces the per-stream manifests under the
// reserved prefix.
const manifestPrefix = ReservedPrefix + "manifest/"

// ManifestName returns the reserved node-side name of a client
// stream's manifest.
func ManifestName(name string) string { return manifestPrefix + name }

// reservedName reports whether a client-supplied stream name intrudes
// on the routing layer's namespace.
func reservedName(name string) bool { return strings.HasPrefix(name, ReservedPrefix) }

// The manifest is the home node's record of a routed stream: the full
// fingerprint sequence in stream order. Combined with the ring it
// yields each chunk's owner, and restoring the per-node sub-streams in
// manifest order reproduces the original byte stream. It deliberately
// carries no lengths or offsets — the fingerprints themselves verify
// the re-interleaved chunks.
//
// Layout: an 8-byte magic, a big-endian uint64 count, then count
// 32-byte fingerprints.
const manifestMagic = "SHRDCLM1"

func encodeManifest(hs []dedup.Hash) []byte {
	out := make([]byte, 0, len(manifestMagic)+8+len(hs)*len(dedup.Hash{}))
	out = append(out, manifestMagic...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(hs)))
	for i := range hs {
		out = append(out, hs[i][:]...)
	}
	return out
}

func decodeManifest(p []byte) ([]dedup.Hash, error) {
	hdr := len(manifestMagic) + 8
	if len(p) < hdr || string(p[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("cluster: malformed manifest header (%d bytes)", len(p))
	}
	count := binary.BigEndian.Uint64(p[len(manifestMagic):hdr])
	body := p[hdr:]
	size := len(dedup.Hash{})
	if uint64(len(body)) != count*uint64(size) {
		return nil, fmt.Errorf("cluster: manifest announces %d chunks but carries %d bytes", count, len(body))
	}
	hs := make([]dedup.Hash, count)
	for i := range hs {
		copy(hs[i][:], body[i*size:])
	}
	return hs, nil
}
