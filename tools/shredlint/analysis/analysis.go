// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface shredlint needs: an
// Analyzer runs once per package over typechecked syntax and reports
// position-anchored diagnostics. The build environment for this repo
// is hermetic (no module proxy), so the suite is built on the standard
// library alone; the API mirrors go/analysis closely enough that the
// analyzers port to a *analysis.Analyzer multichecker mechanically if
// x/tools ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named pass. Run inspects a single package via its
// Pass and reports findings; it returns an error only for internal
// failures (a finding is a Diagnostic, not an error).
type Analyzer struct {
	// Name is the rule name used in output and //lint:allow comments.
	Name string
	// Doc is the one-line invariant the analyzer compiles into CI.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and typechecked state to an
// analyzer, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's typechecked non-test syntax.
	Files []*ast.File
	// TestFiles is the package's _test.go syntax, parsed but NOT
	// typechecked — enough for convention checks (a Fuzz target
	// exists and mentions the decoder) without dragging the full test
	// dependency graph through the typechecker.
	TestFiles []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Preorder walks every non-test file in depth-first order, calling fn
// for each node.
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position: suppressed findings (a //lint:allow
// comment naming the rule, with a reason) are dropped, and a
// //lint:allow with no reason is itself reported so silent waivers
// cannot accumulate.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				TestFiles: pkg.TestSyntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = filterAllowed(diags, allows, pkg.Fset)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// allowRe parses "//lint:allow <rule> <reason>". The reason is
// mandatory: a waiver that does not say why is reported instead of
// honored.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+(\S+)\s*(.*)$`)

// allow is one suppression comment: a rule name anchored to a line.
type allow struct {
	file   string
	line   int
	rule   string
	reason string
	pos    token.Pos
}

// collectAllows gathers every //lint:allow comment in the package
// (test files included, so suppressions work in testdata suites too).
func collectAllows(pkg *Package) []allow {
	var out []allow
	files := append(append([]*ast.File{}, pkg.Syntax...), pkg.TestSyntax...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				out = append(out, allow{
					file: p.Filename, line: p.Line,
					rule: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos(),
				})
			}
		}
	}
	return out
}

// filterAllowed drops diagnostics waived by an allow on the same line
// or the line directly above, and reports reason-less allows.
func filterAllowed(diags []Diagnostic, allows []allow, fset *token.FileSet) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	kept := diags[:0]
	reported := map[token.Pos]bool{}
	for _, d := range diags {
		waived := false
		for _, a := range allows {
			if a.rule != d.Rule || a.file != d.Pos.Filename {
				continue
			}
			if a.line != d.Pos.Line && a.line != d.Pos.Line-1 {
				continue
			}
			if a.reason == "" {
				if !reported[a.pos] {
					reported[a.pos] = true
					kept = append(kept, Diagnostic{
						Pos:     fset.Position(a.pos),
						Rule:    d.Rule,
						Message: "lint:allow needs a reason: //lint:allow " + a.rule + " <why>",
					})
				}
				continue
			}
			waived = true
			break
		}
		if !waived {
			kept = append(kept, d)
		}
	}
	return kept
}
