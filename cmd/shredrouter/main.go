// Command shredrouter scales the ingest service across a static
// cluster of shredderd nodes without changing the wire protocol.
// Ordinary clients (cmd/backupsim -server, any ingest.Session) connect
// to the router exactly as they would to a single daemon; every stream
// is split by chunk ownership on a consistent-hash ring and fanned out
// to the nodes behind the client's back.
//
// Ownership is by content: a chunk's SHA-256 fingerprint places it on
// the ring, and the owning node holds its body, index entry and
// reference counts. A stream becomes one dedup sub-stream per owner
// plus a fingerprint manifest on the stream's home node (under the
// reserved ".cluster/" namespace); restores re-interleave the
// sub-streams in manifest order and verify every chunk on the way
// through, deletes fan out to every node. See internal/cluster.
//
// The topology is static: -nodes "id=addr,..." on the command line or
// -topology pointing at a JSON file {"nodes": [{"id", "addr"}, ...]}.
// Node IDs place data on the ring — keep them stable across restarts
// and address changes, or chunks migrate out from under their node.
//
// Operability matches shredderd: -admin serves /metrics (per-node
// traffic, latency and liveness gauges), /healthz, /readyz, /statusz,
// /debug/traces and pprof; logging is structured; every client
// operation records a span tree, remote-parented under the client's
// trace when a protocol-v4 client sends one.
//
//	shredrouter -nodes "n0=host0:9323,n1=host1:9323" [-addr :9423]
//	            [-topology FILE] [-vnodes N] [-admin :7072]
//	            [-chunker rabin|fastcdc] [-avg KiB] [-minchunk KiB] [-maxchunk KiB]
//	            [-node-timeout D] [-node-retries N] [-node-idle N]
//	            [-trace-slow D] [-grace D] [-log-level L] [-log-json] [-quiet]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/bits"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shredder/internal/chunk"
	"shredder/internal/cluster"
	"shredder/internal/ingest"
	"shredder/internal/obs"
	"shredder/internal/stats"
)

func main() {
	addr := flag.String("addr", ":9423", "TCP listen address for client sessions")
	admin := flag.String("admin", ":7072", "admin HTTP address for /metrics, /healthz, /readyz, /statusz and pprof (empty: disabled)")
	nodes := flag.String("nodes", "", "comma-separated cluster topology: id=addr or bare addr entries")
	topoFile := flag.String("topology", "", "JSON topology file (alternative to -nodes)")
	vnodes := flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per physical node on the hash ring")
	chunkerName := flag.String("chunker", "", "chunking engine for clients that skip negotiation: rabin or fastcdc (empty: cluster default)")
	avgKiB := flag.Int("avg", 4, "target average chunk size in KiB (power of two)")
	minKiB := flag.Int("minchunk", 0, "minimum chunk size in KiB (0: engine default)")
	maxKiB := flag.Int("maxchunk", 0, "maximum chunk size in KiB (0: engine default; capped at one frame)")
	nodeTimeout := flag.Duration("node-timeout", ingest.DefaultDialTimeout, "per-attempt node connect timeout")
	nodeRetries := flag.Int("node-retries", 3, "total connect attempts per node before a stream fails")
	nodeIdle := flag.Int("node-idle", 4, "warm sessions kept per node between streams")
	traceSlow := flag.Duration("trace-slow", 0, "retain and log the span tree of any operation at or over this duration (0: keep recent traces only)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for active client sessions")
	logLevel := flag.String("log-level", "info", "log floor: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "emit JSON log lines instead of text")
	quiet := flag.Bool("quiet", false, "suppress per-stream logging (same as -log-level warn)")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logJSON, *quiet)
	if err != nil {
		fatal(err)
	}

	var topo cluster.Topology
	switch {
	case *nodes != "" && *topoFile != "":
		fatal(errors.New("-nodes and -topology are mutually exclusive"))
	case *nodes != "":
		topo, err = cluster.ParseNodes(*nodes)
	case *topoFile != "":
		topo, err = cluster.LoadTopology(*topoFile)
	default:
		fatal(errors.New("a topology is required: -nodes or -topology"))
	}
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	bi := obs.RegisterBuildInfo(reg)
	tracer := obs.NewTracer(obs.TracerConfig{
		SlowThreshold: *traceSlow,
		OnSlow: func(root *obs.Span) {
			logger.Warn("slow operation", "name", root.Name(),
				"dur", root.Duration().Round(time.Microsecond).String(),
				"trace", root.Trace().String(), "tree", "\n"+root.TraceData().Tree())
		},
	})

	spec := cluster.DefaultSpec()
	if *chunkerName != "" {
		spec, err = buildSpec(*chunkerName, *avgKiB<<10, *minKiB<<10, *maxKiB<<10)
		if err != nil {
			fatal(err)
		}
	}
	c, err := cluster.New(cluster.Config{
		Topology: topo,
		Vnodes:   *vnodes,
		Spec:     spec,
		Dial: ingest.DialOptions{
			Timeout:  *nodeTimeout,
			Attempts: *nodeRetries,
		},
		MaxIdlePerNode: *nodeIdle,
		Obs:            reg,
		Tracer:         tracer,
		Logger:         logger,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	router := cluster.NewRouter(c, 0)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	adm := obs.NewAdmin(reg, func(w io.Writer) {
		fmt.Fprintf(w, "build %s (go %s, rev %s)\n", bi.Version, bi.GoVersion, bi.Revision)
		fmt.Fprintf(w, "listen %s\n", l.Addr())
		fmt.Fprintf(w, "nodes %d (vnodes %d each)\n", c.Ring().Len(), *vnodes)
		for i := 0; i < c.Ring().Len(); i++ {
			n := c.Ring().Node(i)
			fmt.Fprintf(w, "  node %s at %s\n", n.ID, n.Addr)
		}
		cspec := c.Spec()
		fmt.Fprintf(w, "default engine %s (min %s, max %s)\n", cspec.Algo,
			fmtBytes(int64(cspec.MinSize)), fmtBytes(int64(cspec.MaxSize)))
	})
	adm.SetTracer(tracer)
	var adminSrv *http.Server
	if *admin != "" {
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal(err)
		}
		adminSrv = &http.Server{Handler: adm}
		go func() {
			if err := adminSrv.Serve(al); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin server failed", "err", err)
			}
		}()
		logger.Info("admin endpoint up", "addr", al.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("draining sessions", "signal", s.String())
		adm.SetDraining(true)
		l.Close()
	}()

	logger.Info("routing", "addr", l.Addr().String(), "nodes", c.Ring().Len(),
		"vnodes", *vnodes, "engine", spec.Algo.String())
	if err := router.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
		fatal(err)
	}
	router.Shutdown(*grace)
	if adminSrv != nil {
		adminSrv.Close()
	}
	logger.Info("shut down cleanly")
}

// buildLogger maps the logging flags to a slog.Logger on stderr,
// mirroring shredderd: -quiet raises the floor to warn unless
// -log-level was given explicitly.
func buildLogger(level string, json, quiet bool) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	levelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "log-level" {
			levelSet = true
		}
	})
	if quiet && !levelSet {
		lv = slog.LevelWarn
	}
	opts := &slog.HandlerOptions{Level: lv}
	if json {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

func fmtBytes(n int64) string { return stats.Bytes(n) }

// buildSpec maps the chunking flags to a chunk.Spec, mirroring
// shredderd — except that a routed deployment always needs a max chunk
// size (restores re-interleave node streams at frame granularity), so
// an unset max gets the engine default rather than unbounded.
func buildSpec(algoName string, avg, min, max int) (chunk.Spec, error) {
	algo, err := chunk.ParseAlgo(algoName)
	if err != nil {
		return chunk.Spec{}, err
	}
	if avg < 2 || avg&(avg-1) != 0 {
		return chunk.Spec{}, fmt.Errorf("average chunk size %d is not a power of two", avg)
	}
	switch algo {
	case chunk.AlgoFastCDC:
		spec := chunk.FastCDCSpec(avg)
		if min != 0 {
			spec.MinSize = min
		}
		if max != 0 {
			spec.MaxSize = max
		}
		return spec, spec.Validate()
	default:
		spec := chunk.DefaultSpec()
		spec.MaskBits = bits.Len(uint(avg)) - 1 // expected chunk size 2^mask
		spec.Marker = 1<<uint(spec.MaskBits) - 1
		spec.MinSize = min
		if min == 0 {
			spec.MinSize = avg / 2
		}
		spec.MaxSize = max
		if max == 0 {
			spec.MaxSize = avg * 8
		}
		return spec, spec.Validate()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shredrouter:", err)
	os.Exit(1)
}
