package shardstore

// Backing is the pluggable storage layer behind a Store: it owns the
// chunk bytes (container packing) and whatever durability machinery the
// implementation provides. The Store keeps the fingerprint index and
// reference counts in memory in front of it; a durable backing
// (internal/persist) journals every index mutation to a write-ahead log
// so Open can hand the maps back after a restart, while MemoryBacking
// journals nothing and recovers nothing.
//
// A Backing is used by exactly one Store. The Store serializes all
// calls to one ShardBacking behind that shard's stripe lock, but
// different shards' backings are called concurrently, and Sync/Close
// may overlap shard calls (a durable backing must tolerate that).
type Backing interface {
	// NumShards reports how many shards the backing was laid out for; a
	// Store opened on it has exactly this many stripes.
	NumShards() int
	// Shard returns the backing for stripe i in [0, NumShards).
	Shard(i int) ShardBacking
	// Missing reports which of the given fingerprints the backing
	// holds no chunk for, as ascending indices into hs — the same
	// answer Store.Missing gives (asserted differentially in tests),
	// but available without a Store on top, so index-less tooling and
	// a fingerprint-routing layer can query presence straight off a
	// backing. It reflects the entries recovered at open plus every
	// Append since, minus every Forget, does its own locking, and is
	// safe to call concurrently with ongoing writes.
	Missing(hs []Hash) []int
	// CommitRecipe durably records a named stream recipe. The Store
	// keeps its own in-memory recipe map; the backing only needs to
	// guarantee Recipes returns the same set after a reopen.
	CommitRecipe(name string, r Recipe) error
	// DeleteRecipe durably records that a named recipe no longer
	// exists (a tombstone in the recipe journal), so Recipes omits it
	// after a reopen. The Store journals the tombstone BEFORE it
	// releases the recipe's chunk references: a crash between the two
	// can leak reference counts (chunks merely stay longer) but can
	// never leave a recovered recipe pointing at released chunks.
	DeleteRecipe(name string) error
	// Recipes returns the recipes recovered at open time (nil when the
	// backing is fresh or non-durable). Ownership of the returned map
	// passes to the caller: the backing must hand out a copy (or nil),
	// never a live view it keeps mutating.
	Recipes() (map[string]Recipe, error)
	// Sync forces everything written so far to durable media.
	Sync() error
	// Close flushes and releases the backing. The Store must not be
	// used afterwards.
	Close() error
}

// BarrierBacking is an optional Backing capability for group commit: a
// backing whose commit points stage and flush but defer their fsync to
// a shared syncer round (persist with a CommitWindow) exposes Barrier,
// and the Store calls it once per API call — after releasing the
// stripe locks and the recipe mutex, so concurrent sessions pile onto
// the same round instead of serializing a window each. Barrier blocks
// until every record staged before the call is durable and returns the
// real outcome of the sync pass that covered it.
type BarrierBacking interface {
	Barrier() error
}

// CheckpointEntry is one live index entry handed to a shard checkpoint:
// the full durable state of one chunk at the moment of the checkpoint.
type CheckpointEntry struct {
	Hash     Hash
	Ref      Ref
	Refcount int64
}

// ShardBacking is one stripe of a Backing: an append-only container
// set plus the journal of index mutations applied to it. Recover must
// be called once, before any other method (Store.Open does this).
type ShardBacking interface {
	// Recover replays the shard's durable state, calling fn once per
	// live index entry with its final reference count. A fresh or
	// non-durable shard calls fn zero times.
	Recover(fn func(h Hash, ref Ref, refcount int64) error) error
	// Append stores chunk bytes, packing them into the shard's open
	// container (rolling to a new one when full), and journals the
	// index insert for h. It returns where the bytes landed.
	Append(h Hash, data []byte) (container int, offset int64, err error)
	// LogRefDelta journals a reference-count change for an existing
	// entry: +1 per duplicate hit or pin, -1 per recipe-delete release.
	// Replay drops an entry whose count reaches zero.
	LogRefDelta(h Hash, delta int64) error
	// Forget removes h from the backing's presence set after the Store
	// dropped its index entry (refcount reached zero). The journal side
	// is the LogRefDelta the Store already staged; Forget only keeps
	// the answer Missing gives in sync with the live index.
	Forget(h Hash)
	// Commit marks the end of one batch of Append/LogRefDelta calls:
	// the backing flushes its journal, honoring its fsync policy.
	Commit() error
	// Read returns the bytes at a stored location. The slice must stay
	// valid after return (containers are append-only and compaction
	// only ever drops whole containers the index no longer references).
	Read(container int, offset, length int64) ([]byte, error)
	// Containers reports how many container slots the shard has opened
	// (dropped containers keep their slot so refs stay stable).
	Containers() int
	// ContainerLen reports how many bytes container i holds, or -1 for
	// a slot whose container was dropped by compaction.
	ContainerLen(i int) int64
	// Relocate re-packs a surviving chunk's bytes into the shard's open
	// container during compaction, journaling the move (so replay
	// re-points the existing index entry) instead of a fresh insert.
	Relocate(h Hash, data []byte) (container int, offset int64, err error)
	// Checkpoint makes every staged move durable, atomically replaces
	// the shard's journal with one describing exactly the given live
	// entries, and only then drops the listed containers. A crash at
	// any byte leaves either the old journal (all containers still on
	// disk) or the new one (which references none of the dropped
	// containers), never a mix.
	Checkpoint(live []CheckpointEntry, drop []int) error
}
