package redelim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"shredder/internal/chunker"
	"shredder/internal/workload"
)

func params() chunker.Params {
	p := chunker.DefaultParams()
	p.MaskBits = 11 // ~2 KB chunks, packet-train scale
	p.Marker = 1<<11 - 1
	p.MinSize = 256
	p.MaxSize = 8 << 10
	return p
}

func newPair(t testing.TB, capacity int) (*Sender, *Receiver) {
	t.Helper()
	s, r, err := NewPair(params(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestNewPairValidation(t *testing.T) {
	if _, _, err := NewPair(params(), 0); err == nil {
		t.Fatal("expected error for zero capacity")
	}
	bad := params()
	bad.Window = 0
	if _, _, err := NewPair(bad, 10); err == nil {
		t.Fatal("expected error for bad chunking params")
	}
}

func TestRoundTrip(t *testing.T) {
	s, r := newPair(t, 1<<16)
	for i := 0; i < 5; i++ {
		payload := workload.Random(int64(i), 64<<10)
		got, err := r.Decode(s.Encode(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
}

func TestRedundancyEliminated(t *testing.T) {
	s, r := newPair(t, 1<<16)
	payload := workload.Random(9, 256<<10)
	// First transmission: all literal.
	if _, err := r.Decode(s.Encode(payload)); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.RefChunks != 0 {
		t.Fatalf("cold cache produced %d refs", before.RefChunks)
	}
	// Retransmission: almost everything eliminated.
	got, err := r.Decode(s.Encode(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("retransmission corrupted")
	}
	after := s.Stats()
	refs := after.RefChunks - before.RefChunks
	chunks := after.Chunks - before.Chunks
	if refs != chunks {
		t.Fatalf("retransmission: %d of %d chunks eliminated", refs, chunks)
	}
	if after.Savings() < 0.45 {
		t.Fatalf("overall savings %.2f, want ~0.5 after one repeat", after.Savings())
	}
}

func TestPartialRedundancy(t *testing.T) {
	s, r := newPair(t, 1<<16)
	base := workload.Random(10, 128<<10)
	if _, err := r.Decode(s.Encode(base)); err != nil {
		t.Fatal(err)
	}
	// 10% changed: most chunks still eliminated.
	edited := workload.MutateClusteredReplace(base, 11, 10, 2)
	before := s.Stats()
	got, err := r.Decode(s.Encode(edited))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, edited) {
		t.Fatal("edited payload corrupted")
	}
	after := s.Stats()
	frac := float64(after.RefChunks-before.RefChunks) / float64(after.Chunks-before.Chunks)
	if frac < 0.6 {
		t.Fatalf("only %.0f%% of chunks eliminated after 10%% edit", frac*100)
	}
}

func TestCacheEvictionStaysSynchronized(t *testing.T) {
	// A tiny cache forces constant eviction; sender must never emit a
	// reference the receiver cannot resolve.
	s, r := newPair(t, 8)
	rng := rand.New(rand.NewSource(12))
	history := make([][]byte, 0, 8)
	for i := 0; i < 200; i++ {
		var payload []byte
		if len(history) > 0 && rng.Intn(2) == 0 {
			payload = history[rng.Intn(len(history))] // resend something old
		} else {
			payload = workload.Random(int64(1000+i), 4<<10)
			history = append(history, payload)
			if len(history) > 8 {
				history = history[1:]
			}
		}
		got, err := r.Decode(s.Encode(payload))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("iteration %d: corrupted", i)
		}
	}
}

func TestDecodeRejectsUnknownRef(t *testing.T) {
	_, r := newPair(t, 16)
	msg := Message{Ref: true}
	if _, err := r.Decode([]Message{msg}); err == nil {
		t.Fatal("expected error for unknown reference")
	}
}

func TestDecodeRejectsCorruptLiteral(t *testing.T) {
	s, r := newPair(t, 16)
	msgs := s.Encode(workload.Random(13, 8<<10))
	// Corrupt a literal payload.
	for i := range msgs {
		if !msgs[i].Ref {
			msgs[i].Data[0] ^= 0xFF
			break
		}
	}
	if _, err := r.Decode(msgs); err == nil {
		t.Fatal("expected error for corrupted literal")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s, r := newPair(t, 1<<12)
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		got, err := r.Decode(s.Encode(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsZero(t *testing.T) {
	var st Stats
	if st.Savings() != 0 {
		t.Fatal("empty stats should save nothing")
	}
	st = Stats{BytesIn: 10, BytesOnWire: 20}
	if st.Savings() != 0 {
		t.Fatal("negative savings must clamp to zero")
	}
}

func TestMessageWireBytes(t *testing.T) {
	ref := Message{Ref: true}
	if ref.WireBytes() != RefWireBytes {
		t.Fatal("ref wire size")
	}
	lit := Message{Data: make([]byte, 100)}
	if lit.WireBytes() != 104 {
		t.Fatal("literal wire size")
	}
}
