package chunk

import (
	"shredder/internal/chunker"
	"shredder/internal/rabin"
)

// DefaultSpec returns the protocol-default configuration: the paper's
// Rabin setup (48-byte window, 13-bit mask, no min/max). Sessions that
// skip negotiation get exactly this.
func DefaultSpec() Spec {
	p := chunker.DefaultParams()
	return RabinSpec(p)
}

// RabinSpec lifts sequential-chunker parameters into a Spec, so
// Rabin-centric callers (the GPU case studies) can feed the engine API
// without re-stating their configuration.
func RabinSpec(p chunker.Params) Spec {
	return Spec{
		Algo:       AlgoRabin,
		Window:     p.Window,
		Polynomial: uint64(p.Polynomial),
		MaskBits:   p.MaskBits,
		Marker:     p.Marker,
		MinSize:    p.MinSize,
		MaxSize:    p.MaxSize,
	}
}

// RabinParams materializes the chunker configuration a Rabin Spec
// describes, applying the default polynomial when unset.
func (s Spec) RabinParams() chunker.Params {
	poly := rabin.Poly(s.Polynomial)
	if poly == 0 {
		poly = rabin.DefaultPolynomial
	}
	return chunker.Params{
		Window:     s.Window,
		Polynomial: poly,
		MaskBits:   s.MaskBits,
		Marker:     s.Marker,
		MinSize:    s.MinSize,
		MaxSize:    s.MaxSize,
	}
}

// Rabin adapts the sequential Rabin reference implementation (package
// chunker) to the Engine interface. It is the only engine the GPU
// pipeline can offload: core type-asserts for it and shares its
// fingerprint table with the kernel.
type Rabin struct {
	spec Spec
	chk  *chunker.Chunker
}

var _ Engine = (*Rabin)(nil)

func newRabin(s Spec) (*Rabin, error) {
	chk, err := chunker.New(s.RabinParams())
	if err != nil {
		return nil, err
	}
	return &Rabin{spec: s, chk: chk}, nil
}

// Spec returns the configuration the engine was built from.
func (r *Rabin) Spec() Spec { return r.spec }

// Chunker exposes the wrapped sequential chunker so cooperating
// implementations (the GPU kernel, the parallel host chunker) share
// the exact same fingerprint arithmetic.
func (r *Rabin) Chunker() *chunker.Chunker { return r.chk }

// fromChunker converts the chunker-native chunk representation.
func fromChunker(c chunker.Chunk) Chunk {
	return Chunk{Offset: c.Offset, Length: c.Length, Fingerprint: uint64(c.Cut), Forced: c.Forced}
}

// Split cuts data with the Rabin reference implementation.
func (r *Rabin) Split(data []byte) []Chunk {
	raw := r.chk.Split(data)
	out := make([]Chunk, len(raw))
	for i, c := range raw {
		out[i] = fromChunker(c)
	}
	return out
}

// rabinStream adapts chunker.Stream to the Stream interface.
type rabinStream struct {
	*chunker.Stream
}

// Stream returns an incremental Rabin feed.
func (r *Rabin) Stream(emit EmitFunc) Stream {
	return rabinStream{chunker.NewStream(r.chk, func(c chunker.Chunk, data []byte) error {
		return emit(fromChunker(c), data)
	})}
}
