package mapreduce

import (
	"reflect"
	"testing"

	"shredder/internal/workload"
)

func TestFanInInvariance(t *testing.T) {
	// The contraction-tree arity must not change results — only how
	// incremental recombination amortizes.
	data := workload.Text(20, 1<<17)
	splits := splitText(data, 1<<13)
	ref, _, err := (&Engine{FanIn: 4}).Run(WordCountJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	for _, fanIn := range []int{2, 3, 8, 16} {
		got, _, err := (&Engine{FanIn: fanIn}).Run(WordCountJob(), splits)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("fan-in %d changed the output", fanIn)
		}
	}
}

func TestFanInAffectsRecombinationCost(t *testing.T) {
	// Wider fan-in means fewer nodes but each change dirties a larger
	// share; narrower fan-in means longer paths. Both must still
	// recombine only O(depth) nodes for a single changed split.
	data := workload.Text(21, 1<<19)
	splits := splitText(data, 1<<13) // ~64 leaves
	for _, fanIn := range []int{2, 4, 8} {
		memo := NewMemo()
		e := &Engine{Memo: memo, FanIn: fanIn}
		if _, _, err := e.Run(WordCountJob(), splits); err != nil {
			t.Fatal(err)
		}
		changed := make([][]byte, len(splits))
		copy(changed, splits)
		changed[len(splits)/2] = []byte("entirely different content\n")
		_, met, err := e.Run(WordCountJob(), changed)
		if err != nil {
			t.Fatal(err)
		}
		if met.MapExecuted != 1 {
			t.Fatalf("fan-in %d: %d map tasks executed", fanIn, met.MapExecuted)
		}
		// Path length bound: ceil(log_fanIn(64)) + slack.
		depth := 0
		for n := len(splits); n > 1; n = (n + fanIn - 1) / fanIn {
			depth++
		}
		if met.CombineExecuted > depth+1 {
			t.Fatalf("fan-in %d: recombined %d nodes, want <= depth %d", fanIn, met.CombineExecuted, depth)
		}
	}
}

func TestWorkersInvariance(t *testing.T) {
	data := workload.Text(22, 1<<16)
	splits := splitText(data, 1<<12)
	ref, _, err := (&Engine{Workers: 1}).Run(CoOccurrenceJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := (&Engine{Workers: 16}).Run(CoOccurrenceJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("worker count changed the output")
	}
}

func TestMemoSharedAcrossJobs(t *testing.T) {
	// Different jobs must not collide in the memo even on identical
	// splits (job name is part of every key).
	data := workload.Text(23, 1<<15)
	splits := splitText(data, 1<<12)
	memo := NewMemo()
	e := &Engine{Memo: memo}
	wc, _, err := e.Run(WordCountJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	co, _, err := e.Run(CoOccurrenceJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	// Word-count keys have no pipe separators; co-occurrence keys do.
	for k := range wc {
		if _, clash := co[k]; clash && k == "" {
			t.Fatal("impossible")
		}
	}
	wantWC, _, _ := (&Engine{}).Run(WordCountJob(), splits)
	if !reflect.DeepEqual(wc, wantWC) {
		t.Fatal("word count corrupted by shared memo")
	}
	wantCO, _, _ := (&Engine{}).Run(CoOccurrenceJob(), splits)
	if !reflect.DeepEqual(co, wantCO) {
		t.Fatal("co-occurrence corrupted by shared memo")
	}
}
