package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"shredder/tools/shredlint/analysis"
)

// ObsNil guards the "instrumentation off" path. The obs package's
// types (Registry, Tracer, Span, ...) promise that a nil receiver is a
// no-op, so call sites never have to check whether observability is
// wired up. Two things can silently break that promise:
//
//  1. A new exported method on a nil-tolerant type that forgets the
//     leading `if x == nil` guard — it panics the first time a server
//     runs without metrics.
//  2. A field access through a possibly-nil *obs.T pointer in another
//     package — fields do not get the method's guard.
var ObsNil = &analysis.Analyzer{
	Name: "obsnil",
	Doc:  "obs instrumentation must stay nil-tolerant: exported methods keep their nil-receiver guard, cross-package field derefs are guarded",
	Run:  runObsNil,
}

func runObsNil(pass *analysis.Pass) error {
	checkNilTolerantMethods(pass)
	checkObsFieldDerefs(pass)
	return nil
}

type methodInfo struct {
	fd      *ast.FuncDecl
	ptr     bool
	guarded bool
}

// checkNilTolerantMethods classifies each locally-declared type with at
// least one guarded exported pointer method as nil-tolerant, then
// requires every exported pointer method on it to either carry the
// guard or only touch the receiver through already-guarded methods
// (delegation, like Inc calling the guarded Add).
func checkNilTolerantMethods(pass *analysis.Pass) {
	byType := map[string][]methodInfo{}
	guardedNames := map[string]map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			recv := fd.Recv.List[0]
			ptr, typeName := recvTypeName(recv.Type)
			if typeName == "" {
				continue
			}
			guarded := false
			if ptr && len(recv.Names) == 1 {
				guarded = firstStmtIsNilGuard(fd.Body, recv.Names[0].Name)
			}
			byType[typeName] = append(byType[typeName], methodInfo{fd: fd, ptr: ptr, guarded: guarded})
			if guarded {
				if guardedNames[typeName] == nil {
					guardedNames[typeName] = map[string]bool{}
				}
				guardedNames[typeName][fd.Name.Name] = true
			}
		}
	}
	for typeName, methods := range byType {
		tolerant := false
		for _, m := range methods {
			if m.guarded && ast.IsExported(m.fd.Name.Name) {
				tolerant = true
				break
			}
		}
		if !tolerant {
			continue
		}
		for _, m := range methods {
			if m.ptr && ast.IsExported(m.fd.Name.Name) && !m.guarded &&
				!delegatesToGuarded(pass, m.fd, guardedNames[typeName]) {
				pass.Reportf(m.fd.Pos(), "exported method (*%s).%s lacks the leading nil-receiver guard the type's other methods promise", typeName, m.fd.Name.Name)
			}
		}
	}
}

// delegatesToGuarded reports whether every use of fd's receiver is a
// call to one of the type's nil-guarded methods, which makes fd
// nil-tolerant without a guard of its own.
func delegatesToGuarded(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[string]bool) bool {
	recv := fd.Recv.List[0]
	if len(recv.Names) != 1 {
		return true // anonymous receiver: the body cannot deref it
	}
	recvObj := pass.TypesInfo.Defs[recv.Names[0]]
	if recvObj == nil {
		return false
	}
	safe := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recvObj && guarded[sel.Sel.Name] {
			safe[id] = true
		}
		return true
	})
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, isIdent := n.(*ast.Ident); isIdent && pass.TypesInfo.Uses[id] == recvObj && !safe[id] {
			ok = false
		}
		return ok
	})
	return ok
}

// recvTypeName unwraps a method receiver type expression.
func recvTypeName(expr ast.Expr) (ptr bool, name string) {
	if star, ok := expr.(*ast.StarExpr); ok {
		ptr = true
		expr = star.X
	}
	// Generic receivers (IndexExpr) are out of scope.
	if id, ok := expr.(*ast.Ident); ok {
		return ptr, id.Name
	}
	return false, ""
}

// firstStmtIsNilGuard reports whether body starts with
// `if recv == nil { ... }`, possibly as one disjunct of an || chain
// (`if recv == nil || len(x) == 0 { return }`).
func firstStmtIsNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	for _, d := range disjuncts(ifStmt.Cond) {
		if isNilCompare(d, recvName, token.EQL) {
			return true
		}
	}
	return false
}

// disjuncts flattens a || chain into its operands.
func disjuncts(cond ast.Expr) []ast.Expr {
	if bin, ok := cond.(*ast.BinaryExpr); ok && bin.Op == token.LOR {
		return append(disjuncts(bin.X), disjuncts(bin.Y)...)
	}
	return []ast.Expr{cond}
}

func isNilCompare(cond ast.Expr, text string, op token.Token) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != op {
		return false
	}
	x, y := types.ExprString(bin.X), types.ExprString(bin.Y)
	return (x == text && y == "nil") || (y == text && x == "nil")
}

// checkObsFieldDerefs flags field selections through a possibly-nil
// pointer to a type from an external package named "obs", unless a
// dominating nil check guards the access.
func checkObsFieldDerefs(pass *analysis.Pass) {
	withStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return
		}
		if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
			return
		}
		named := namedOf(tv.Type)
		if named == nil {
			return
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg() == pass.Pkg || obj.Pkg().Name() != "obs" {
			return
		}
		body := enclosingFuncBody(stack)
		if body != nil && nilGuardedAt(body, types.ExprString(sel.X), sel.Pos()) {
			return
		}
		pass.Reportf(sel.Pos(), "field %s read through possibly-nil *%s.%s; guard with a nil check or go through a nil-tolerant method", sel.Sel.Name, obj.Pkg().Name(), obj.Name())
	})
}

// nilGuardedAt reports whether position pos inside body is dominated
// by a nil guard on the expression spelled exprText: either inside an
// `if exprText != nil { ... }` body (including the right side of a
// `exprText != nil && ...` condition), or after an early-exit
// `if exprText == nil { return/break/continue }`.
func nilGuardedAt(body *ast.BlockStmt, exprText string, pos token.Pos) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, cond := range conjuncts(ifStmt.Cond) {
			if isNilCompare(cond, exprText, token.NEQ) {
				if pos > cond.End() && pos < ifStmt.Body.End() {
					guarded = true
				}
			}
			if isNilCompare(cond, exprText, token.EQL) && terminates(ifStmt.Body) {
				if pos > ifStmt.End() && pos < body.End() {
					guarded = true
				}
			}
		}
		return true
	})
	return guarded
}

// conjuncts flattens a && chain into its operands.
func conjuncts(cond ast.Expr) []ast.Expr {
	if bin, ok := cond.(*ast.BinaryExpr); ok && bin.Op == token.LAND {
		return append(conjuncts(bin.X), conjuncts(bin.Y)...)
	}
	return []ast.Expr{cond}
}

// terminates reports whether the block's last statement leaves the
// enclosing scope.
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			name := calleeName(call)
			return name == "panic" || name == "Exit" || name == "Fatal" || name == "Fatalf"
		}
	}
	return false
}
