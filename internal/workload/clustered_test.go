package workload

import (
	"bytes"
	"testing"
)

func TestMutateClusteredReplaceAccuracy(t *testing.T) {
	data := Random(90, 1<<20)
	for _, pct := range []float64{1, 5, 25} {
		mod := MutateClusteredReplace(data, 91, pct, 4)
		if len(mod) != len(data) {
			t.Fatal("length changed")
		}
		frac := ChangedFraction(data, mod) * 100
		if frac < pct*0.7 || frac > pct*1.4 {
			t.Fatalf("requested %v%%, measured %.2f%%", pct, frac)
		}
	}
}

func TestMutateClusteredIsLocalized(t *testing.T) {
	// The point of clustering: with 4 regions at 5%, at least half of
	// the 64 KB-aligned blocks must be completely untouched — the
	// property that lets content-defined splits survive.
	data := Random(92, 1<<20)
	mod := MutateClusteredReplace(data, 93, 5, 4)
	const block = 64 << 10
	untouched := 0
	blocks := 0
	for off := 0; off+block <= len(data); off += block {
		blocks++
		if bytes.Equal(data[off:off+block], mod[off:off+block]) {
			untouched++
		}
	}
	if untouched < blocks/2 {
		t.Fatalf("only %d of %d blocks untouched; edits not localized", untouched, blocks)
	}
	// Contrast: scattered MutateReplace touches nearly everything.
	scattered := MutateReplace(data, 93, 5)
	untouchedScattered := 0
	for off := 0; off+block <= len(data); off += block {
		if bytes.Equal(data[off:off+block], scattered[off:off+block]) {
			untouchedScattered++
		}
	}
	if untouchedScattered >= untouched {
		t.Fatalf("scattered edits (%d untouched) not worse than clustered (%d)",
			untouchedScattered, untouched)
	}
}

func TestMutateClusteredEdgeCases(t *testing.T) {
	data := Random(94, 1024)
	if !bytes.Equal(MutateClusteredReplace(data, 1, 0, 4), data) {
		t.Fatal("0%% changed data")
	}
	if !bytes.Equal(MutateClusteredReplace(data, 1, 5, 0), data) {
		t.Fatal("zero regions changed data")
	}
	if len(MutateClusteredReplace(nil, 1, 5, 4)) != 0 {
		t.Fatal("nil input")
	}
	// Deterministic.
	a := MutateClusteredReplace(data, 7, 10, 3)
	b := MutateClusteredReplace(data, 7, 10, 3)
	if !bytes.Equal(a, b) {
		t.Fatal("not deterministic")
	}
}
