// Positive suite for the obsnil analyzer: an unguarded field deref on
// instrumentation that may be nil, and a nil-tolerant type growing an
// exported method without the guard.
package obsnil

import "obs"

type server struct {
	reg *obs.Registry
}

func (s *server) handle() {
	s.reg.Add(1)    // nil-tolerant method: fine even with reg == nil
	n := s.reg.Hits // want `field Hits read through possibly-nil \*obs.Registry`
	_ = n
}

func (s *server) guarded() int {
	if s.reg == nil {
		return 0
	}
	return s.reg.Hits // dominated by the early return: fine
}

func (s *server) inline() int {
	if s.reg != nil && s.reg.Hits > 0 {
		return s.reg.Hits // inside the != nil conjunction: fine
	}
	return 0
}

// counter promises nil tolerance via Inc, but Reset forgets the guard.
type counter struct{ n int }

func (c *counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

func (c *counter) Reset() { // want `lacks the leading nil-receiver guard`
	c.n = 0
}

func (c *counter) zero() { c.n = 0 }

// Clear delegates, but to an unguarded method: still a panic with a
// nil receiver.
func (c *counter) Clear() { // want `lacks the leading nil-receiver guard`
	c.zero()
}
