// Negative suite for the stripelock analyzer: map work and backing
// interface calls may happen under the stripe; I/O and channel traffic
// happen outside it, and closures made under the lock run elsewhere.
package shardstore

import (
	"os"
	"sync"
)

type Backing interface {
	LogRefDelta(h string, d int)
}

type shard struct {
	mu   sync.Mutex
	m    map[string]int
	back Backing
}

func (sh *shard) pin(h string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m[h]++
	// Calls through the backing interface are the sanctioned
	// exception: persist owns its own locking and batching.
	sh.back.LogRefDelta(h, 1)
}

func (sh *shard) flushAfter(path string, b []byte) error {
	sh.mu.Lock()
	n := len(sh.m)
	sh.mu.Unlock()
	if n > 0 {
		return os.WriteFile(path, b, 0o644)
	}
	return nil
}

// snapshot builds a closure under the lock; the closure itself runs
// after the unlock, so its I/O is fine.
func (sh *shard) snapshot(path string) func() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	keys := make([]string, 0, len(sh.m))
	for k := range sh.m {
		keys = append(keys, k)
	}
	return func() error {
		return os.WriteFile(path, []byte{byte(len(keys))}, 0o644)
	}
}
