package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"

	"shredder/internal/chunk"
)

// Client speaks the ingest protocol over one connection. It is not
// safe for concurrent use: a session runs one operation at a time
// (open several clients for parallel streams — that is the point of
// the sharded server).
type Client struct {
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	buf       []byte
	frameSize int
}

// NewClient wraps an established connection (TCP, unix socket,
// net.Pipe, ...).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 256<<10),
		bw:        bufio.NewWriterSize(conn, 256<<10),
		frameSize: DefaultFrameSize,
	}
}

// Dial connects to a shredderd server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// Negotiate proposes a chunking engine for this session and returns
// the spec the server accepted. Call it before the first Backup;
// sessions that never negotiate get the server's default (Rabin)
// engine, wire-compatible with pre-negotiation servers. A server that
// rejects the spec — or predates negotiation entirely and answers the
// unknown frame with an error — surfaces as *NegotiationError.
func (c *Client) Negotiate(spec chunk.Spec) (chunk.Spec, error) {
	if err := spec.Validate(); err != nil {
		return chunk.Spec{}, err
	}
	if err := writeFrame(c.bw, MsgHello, encodeHello(ProtocolVersion, spec)); err != nil {
		return chunk.Spec{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return chunk.Spec{}, err
	}
	typ, payload, err := readFrame(c.br, c.buf)
	if err != nil {
		return chunk.Spec{}, err
	}
	c.keep(payload)
	switch typ {
	case MsgAccept:
		_, accepted, err := decodeHello(payload)
		if err != nil {
			return chunk.Spec{}, err
		}
		return accepted, nil
	case MsgError:
		return chunk.Spec{}, &NegotiationError{Reason: string(payload)}
	default:
		return chunk.Spec{}, &UnexpectedFrameError{Type: typ, Context: "hello reply"}
	}
}

// Backup streams r to the server under the given name and returns the
// server's dedup statistics for the stream.
func (c *Client) Backup(name string, r io.Reader) (*StreamStats, error) {
	if err := writeFrame(c.bw, MsgBegin, []byte(name)); err != nil {
		return nil, err
	}
	if cap(c.buf) < c.frameSize {
		c.buf = make([]byte, c.frameSize)
	}
	buf := c.buf[:c.frameSize]
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			if werr := writeFrame(c.bw, MsgData, buf[:n]); werr != nil {
				return nil, werr
			}
			// Keep the transport moving: net.Pipe and small TCP windows
			// need the server consuming while we produce.
			if ferr := c.bw.Flush(); ferr != nil {
				return nil, ferr
			}
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := writeFrame(c.bw, MsgEnd, nil); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(c.br, c.buf)
	if err != nil {
		return nil, err
	}
	c.keep(payload)
	switch typ {
	case MsgStats:
		st, err := decodeStreamStats(payload)
		if err != nil {
			return nil, err
		}
		return &st, nil
	case MsgError:
		return nil, &RemoteError{Msg: string(payload)}
	default:
		return nil, &UnexpectedFrameError{Type: typ, Context: "backup reply"}
	}
}

// BackupBytes is Backup over an in-memory image.
func (c *Client) BackupBytes(name string, data []byte) (*StreamStats, error) {
	return c.Backup(name, bytes.NewReader(data))
}

// Restore streams a previously backed-up name from the server into w,
// returning the byte count.
func (c *Client) Restore(name string, w io.Writer) (int64, error) {
	if err := writeFrame(c.bw, MsgRestore, []byte(name)); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	var total int64
	for {
		typ, payload, err := readFrame(c.br, c.buf)
		if err != nil {
			return total, err
		}
		c.keep(payload)
		switch typ {
		case MsgData:
			n, werr := w.Write(payload)
			total += int64(n)
			if werr != nil {
				return total, werr
			}
		case MsgEnd:
			return total, nil
		case MsgError:
			return total, &RemoteError{Msg: string(payload)}
		default:
			return total, &UnexpectedFrameError{Type: typ, Context: "restore stream"}
		}
	}
}

// RestoreBytes is Restore into memory.
func (c *Client) RestoreBytes(name string) ([]byte, error) {
	var out bytes.Buffer
	if _, err := c.Restore(name, &out); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Verify restores name and checks it against original byte-for-byte.
func (c *Client) Verify(name string, original []byte) error {
	got, err := c.RestoreBytes(name)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, original) {
		return errors.New("ingest: restored stream differs from original")
	}
	return nil
}

// keep retains a grown frame buffer for reuse.
func (c *Client) keep(payload []byte) {
	if cap(payload) > cap(c.buf) {
		c.buf = payload[:cap(payload)]
	}
}
