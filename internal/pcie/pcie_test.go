package pcie

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	m := Default()
	m.H2DBandwidth = 0
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for zero bandwidth")
	}
	m = Default()
	m.PageableOverhead = -1
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for negative overhead")
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	m := Default()
	var prev time.Duration
	for n := int64(4 << 10); n <= 64<<20; n *= 2 {
		d := m.TransferTime(n, HostToDevice, Pinned)
		if d <= prev {
			t.Fatalf("transfer time not increasing at %d bytes", n)
		}
		prev = d
	}
}

func TestPinnedSaturatesEarly(t *testing.T) {
	// Figure 3: pinned throughput saturates around 256 KB — at that
	// size it must already exceed 80% of peak.
	m := Default()
	bw := m.Bandwidth(256<<10, HostToDevice, Pinned)
	if bw < 0.8*m.H2DBandwidth {
		t.Fatalf("pinned bandwidth at 256KB = %.2f GB/s, want >= 80%% of peak", bw/1e9)
	}
	// While at 4 KB it is far from peak (small transfers are expensive).
	if small := m.Bandwidth(4<<10, HostToDevice, Pinned); small > 0.5*m.H2DBandwidth {
		t.Fatalf("pinned bandwidth at 4KB = %.2f GB/s, unexpectedly high", small/1e9)
	}
}

func TestPageableSaturatesLate(t *testing.T) {
	m := Default()
	// At 256 KB pageable is still way below peak...
	if bw := m.Bandwidth(256<<10, HostToDevice, Pageable); bw > 0.5*m.H2DBandwidth {
		t.Fatalf("pageable bandwidth at 256KB = %.2f GB/s, unexpectedly high", bw/1e9)
	}
	// ...but by 32 MB it has saturated (>= 85% of its own asymptote).
	asymptote := m.H2DBandwidth / (1 + m.PageableOverhead)
	if bw := m.Bandwidth(32<<20, HostToDevice, Pageable); bw < 0.85*asymptote {
		t.Fatalf("pageable bandwidth at 32MB = %.2f GB/s, want >= 85%% of asymptote", bw/1e9)
	}
}

func TestLargeBuffersKindsConverge(t *testing.T) {
	// Figure 3 highlight (iii): for large buffers the pinned/pageable
	// difference is not significant (within ~10%).
	m := Default()
	pg := m.Bandwidth(64<<20, HostToDevice, Pageable)
	pn := m.Bandwidth(64<<20, HostToDevice, Pinned)
	if pn/pg > 1.15 {
		t.Fatalf("pinned/pageable at 64MB = %.3f, want <= 1.15", pn/pg)
	}
}

func TestDirectionAsymmetry(t *testing.T) {
	// H2D peak (5.406) is higher than D2H (5.129), as measured in §4.1.1.
	m := Default()
	h2d := m.Bandwidth(64<<20, HostToDevice, Pinned)
	d2h := m.Bandwidth(64<<20, DeviceToHost, Pinned)
	if h2d <= d2h {
		t.Fatalf("H2D %.3f GB/s not above D2H %.3f GB/s", h2d/1e9, d2h/1e9)
	}
}

func TestZeroBytes(t *testing.T) {
	m := Default()
	if m.TransferTime(0, HostToDevice, Pinned) != 0 {
		t.Fatal("zero-byte transfer should cost nothing")
	}
	if m.Bandwidth(0, HostToDevice, Pinned) != 0 {
		t.Fatal("zero-byte bandwidth should be zero")
	}
}

func TestStrings(t *testing.T) {
	if HostToDevice.String() == DeviceToHost.String() {
		t.Fatal("direction strings collide")
	}
	if Pinned.String() == Pageable.String() {
		t.Fatal("buffer kind strings collide")
	}
}
