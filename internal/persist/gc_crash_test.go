package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shredder/internal/dedup"
	"shredder/internal/shardstore"
)

// The retention crash battery. Deletion and compaction write three
// kinds of records — recipe tombstones (recipe log), refcount
// decrements and relocations (shard WAL) — and the invariants a crash
// at ANY byte must preserve are:
//
//  1. no live chunk is lost: every recipe the recovered store reports
//     reconstructs byte-exactly;
//  2. no deleted recipe is resurrected pointing at released chunks: a
//     recipe either comes back whole or not at all.
//
// The write ordering that makes this true: the tombstone is journaled
// (and, under FsyncAlways, durable) before any decrement, and
// relocated copies are durable before the WAL checkpoint, which is
// durable (atomic rename) before any container is unlinked. The tests
// below truncate each journal across every byte of the reachable crash
// states.

// walLen returns the shard-0 WAL size.
func walLen(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, "shard-0000", walName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// recipeLogLen returns the recipe journal size.
func recipeLogLen(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, recipeLogName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestDeleteCrashShardWALTruncation cuts the shard WAL at every byte
// of the delete's decrement tail (the tombstone is already durable —
// the ordering DeleteRecipe guarantees) and asserts the retained
// recipe always restores, the deleted recipe never resurrects, and the
// refcounts match the surviving record prefix exactly.
func TestDeleteCrashShardWALTruncation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, ContainerSize: 1 << 20, Fsync: FsyncPolicy{Mode: FsyncNever}}
	chunkA := bytes.Repeat([]byte{'a'}, 300) // only in r1
	chunkB := bytes.Repeat([]byte{'b'}, 200) // shared
	chunkC := bytes.Repeat([]byte{'c'}, 100) // only in r2
	hA, hB, hC := dedup.Sum(chunkA), dedup.Sum(chunkB), dedup.Sum(chunkC)

	st := openStore(t, dir, opts)
	ingestStream(t, st, "r1", [][]byte{chunkA, chunkB})
	ingestStream(t, st, "r2", [][]byte{chunkB, chunkC})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	pre := walLen(t, dir)

	st = openStore(t, dir, opts)
	ds, err := st.DeleteRecipe("r1")
	if err != nil {
		t.Fatal(err)
	}
	if ds.ChunksReleased != 2 || ds.ChunksFreed != 1 || ds.BytesFreed != int64(len(chunkA)) {
		t.Fatalf("delete stats %+v", ds)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	full := walLen(t, dir)
	if full <= pre {
		t.Fatalf("delete journaled nothing: %d -> %d", pre, full)
	}
	// Parse the decrement tail's record boundaries so every cut maps to
	// how many decrements survive (order: recipe order, A then B).
	raw, err := os.ReadFile(filepath.Join(dir, "shard-0000", walName))
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for off := pre; off < full; {
		body, size, rerr := readRecord(raw[off:])
		if rerr != nil || body[0] != recRefDelta {
			t.Fatalf("unexpected delete-tail record at %d: %v", off, rerr)
		}
		off += int64(size)
		ends = append(ends, off)
	}
	if len(ends) != 2 {
		t.Fatalf("delete tail has %d records, want 2", len(ends))
	}

	wantR2 := append(append([]byte(nil), chunkB...), chunkC...)
	for cut := pre; cut <= full; cut++ {
		crash := t.TempDir()
		copyTree(t, dir, crash)
		if err := os.Truncate(filepath.Join(crash, "shard-0000", walName), cut); err != nil {
			t.Fatal(err)
		}
		got, err := OpenStore(crash, opts)
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		survived := 0
		for _, end := range ends {
			if end <= cut {
				survived++
			}
		}
		// Invariant 2: the tombstone is durable, so r1 must be gone at
		// every cut.
		if _, ok := got.Recipe("r1"); ok {
			t.Fatalf("cut at %d: deleted recipe resurrected", cut)
		}
		// Invariant 1: the retained recipe restores byte-exactly.
		r2, ok := got.Recipe("r2")
		if !ok {
			t.Fatalf("cut at %d: retained recipe lost", cut)
		}
		data, err := got.Reconstruct(r2)
		if err != nil || !bytes.Equal(data, wantR2) {
			t.Fatalf("cut at %d: retained stream broken: %v", cut, err)
		}
		// Exact refcounts for the surviving prefix: decrement order is
		// A (1→0, dropped) then B (2→1).
		wantA := int64(1)
		wantB := int64(2)
		if survived >= 1 {
			wantA = 0
		}
		if survived >= 2 {
			wantB = 1
		}
		if rc := got.Refcount(hA); rc != wantA {
			t.Fatalf("cut at %d: refcount(A) = %d, want %d", cut, rc, wantA)
		}
		if rc := got.Refcount(hB); rc != wantB {
			t.Fatalf("cut at %d: refcount(B) = %d, want %d", cut, rc, wantB)
		}
		if rc := got.Refcount(hC); rc != 1 {
			t.Fatalf("cut at %d: refcount(C) = %d, want 1", cut, rc)
		}
		// The repaired store keeps working: finish the interrupted
		// delete's worth of work by re-deleting nothing (r1 is gone),
		// put a chunk, close, recover again.
		if _, _, err := got.Put([]byte("post-crash chunk")); err != nil {
			t.Fatalf("cut at %d: put after recovery: %v", cut, err)
		}
		statsAfter := got.Stats()
		if err := got.Close(); err != nil {
			t.Fatalf("cut at %d: close: %v", cut, err)
		}
		again, err := OpenStore(crash, opts)
		if err != nil {
			t.Fatalf("cut at %d: second recovery: %v", cut, err)
		}
		if s := again.Stats(); s != statsAfter {
			t.Fatalf("cut at %d: second recovery drifted: %+v != %+v", cut, s, statsAfter)
		}
		again.Close()
	}
}

// TestDeleteCrashTombstoneTruncation cuts the recipe journal at every
// byte of the tombstone record, with the shard WAL at its pre-delete
// state (the reachable crash window: DeleteRecipe makes the tombstone
// durable before staging any decrement). The deleted recipe must come
// back whole (torn tombstone) or not at all (complete tombstone) —
// never broken.
func TestDeleteCrashTombstoneTruncation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, Fsync: FsyncPolicy{Mode: FsyncNever}}
	chunkA := bytes.Repeat([]byte{'a'}, 300)
	chunkB := bytes.Repeat([]byte{'b'}, 200)

	st := openStore(t, dir, opts)
	ingestStream(t, st, "r1", [][]byte{chunkA, chunkB})
	ingestStream(t, st, "r2", [][]byte{chunkB})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	preShard := walLen(t, dir)
	preRecipes := recipeLogLen(t, dir)

	st = openStore(t, dir, opts)
	if _, err := st.DeleteRecipe("r1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fullRecipes := recipeLogLen(t, dir)

	wantR1 := append(append([]byte(nil), chunkA...), chunkB...)
	for cut := preRecipes; cut <= fullRecipes; cut++ {
		crash := t.TempDir()
		copyTree(t, dir, crash)
		if err := os.Truncate(filepath.Join(crash, recipeLogName), cut); err != nil {
			t.Fatal(err)
		}
		// The decrements never hit disk: DeleteRecipe orders the
		// tombstone first.
		if err := os.Truncate(filepath.Join(crash, "shard-0000", walName), preShard); err != nil {
			t.Fatal(err)
		}
		got, err := OpenStore(crash, opts)
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		r1, ok := got.Recipe("r1")
		if cut < fullRecipes {
			// Torn tombstone: the delete never happened.
			if !ok {
				t.Fatalf("cut at %d: recipe lost without its tombstone", cut)
			}
			data, err := got.Reconstruct(r1)
			if err != nil || !bytes.Equal(data, wantR1) {
				t.Fatalf("cut at %d: surviving recipe broken: %v", cut, err)
			}
		} else if ok {
			t.Fatalf("cut at %d: complete tombstone did not delete", cut)
		}
		// r2 restores either way.
		r2, ok := got.Recipe("r2")
		if !ok {
			t.Fatalf("cut at %d: retained recipe lost", cut)
		}
		if data, err := got.Reconstruct(r2); err != nil || !bytes.Equal(data, chunkB) {
			t.Fatalf("cut at %d: retained stream broken: %v", cut, err)
		}
		got.Close()
	}
}

// TestRelocateCrashWALTruncation builds the pre-checkpoint compaction
// state — relocation records staged in the live WAL, old containers
// still on disk — and cuts the WAL at every byte. Whatever prefix
// survives, every chunk must read back byte-exactly from whichever
// location the prefix says, under both plain and scrub recovery.
func TestRelocateCrashWALTruncation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, ContainerSize: 600, Fsync: FsyncPolicy{Mode: FsyncNever}}
	chunks := [][]byte{
		bytes.Repeat([]byte{'a'}, 256),
		bytes.Repeat([]byte{'b'}, 256),
		bytes.Repeat([]byte{'c'}, 256),
	}
	// Drive the backing directly to freeze the moment between the
	// relocation commits and the checkpoint (Store.Compact always
	// checkpoints; a crash can land exactly here).
	b, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	sh := b.Shard(0)
	if err := sh.Recover(func(shardstore.Hash, shardstore.Ref, int64) error {
		return fmt.Errorf("fresh shard recovered state")
	}); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if _, _, err := sh.Append(dedup.Sum(c), c); err != nil {
			t.Fatal(err)
		}
	}
	// A and B move (as if their container were mostly dead); their old
	// copies stay on disk because no checkpoint dropped them.
	for _, c := range chunks[:2] {
		if _, _, err := sh.Relocate(dedup.Sum(c), c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	full := walLen(t, dir)
	for _, scrub := range []bool{false, true} {
		ropts := opts
		ropts.VerifyOnRecover = scrub
		for cut := int64(0); cut <= full; cut++ {
			crash := t.TempDir()
			copyTree(t, dir, crash)
			if err := os.Truncate(filepath.Join(crash, "shard-0000", walName), cut); err != nil {
				t.Fatal(err)
			}
			got, err := OpenStore(crash, ropts)
			if err != nil {
				t.Fatalf("scrub=%v cut at %d: recovery failed: %v", scrub, cut, err)
			}
			// Every chunk whose insert survived must read back exactly,
			// from old or new location alike.
			for i, c := range chunks {
				data, ok, gerr := got.GetByHash(dedup.Sum(c))
				if !ok {
					continue // insert fell past the cut
				}
				if gerr != nil || !bytes.Equal(data, c) {
					t.Fatalf("scrub=%v cut at %d: chunk %d corrupt: %v", scrub, cut, i, gerr)
				}
				if rc := got.Refcount(dedup.Sum(c)); rc != 1 {
					t.Fatalf("scrub=%v cut at %d: chunk %d refcount %d", scrub, cut, i, rc)
				}
			}
			// The repaired store stays writable and stable.
			if _, _, err := got.Put([]byte("post-crash")); err != nil {
				t.Fatalf("scrub=%v cut at %d: put: %v", scrub, cut, err)
			}
			statsAfter := got.Stats()
			if err := got.Close(); err != nil {
				t.Fatal(err)
			}
			again, err := OpenStore(crash, ropts)
			if err != nil {
				t.Fatalf("scrub=%v cut at %d: second recovery: %v", scrub, cut, err)
			}
			if s := again.Stats(); s != statsAfter {
				t.Fatalf("scrub=%v cut at %d: drifted %+v != %+v", scrub, cut, s, statsAfter)
			}
			again.Close()
		}
	}
}

// TestCompactionCrashBeforeCheckpointRename: a crash mid-checkpoint
// leaves a wal.tmp; recovery must ignore and remove it, answering from
// the old WAL (every container still on disk). Same for the recipe
// journal's rewrite temp file.
func TestCompactionCrashBeforeCheckpointRename(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, ContainerSize: 1 << 10, Fsync: FsyncPolicy{Mode: FsyncNever}}
	st := openStore(t, dir, opts)
	var keepChunks [][]byte
	for i := 0; i < 6; i++ {
		keepChunks = append(keepChunks, chunk256("keep", i))
	}
	keep := ingestStream(t, st, "keep", keepChunks)
	want := st.Stats()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant half-written checkpoint/rewrite temp files.
	if err := os.WriteFile(filepath.Join(dir, "shard-0000", walTmpName), []byte("torn checkpoi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, recipeLogName+".tmp"), []byte("torn rewrit"), 0o644); err != nil {
		t.Fatal(err)
	}
	st = openStore(t, dir, opts)
	defer st.Close()
	if got := st.Stats(); got != want {
		t.Fatalf("recovered stats %+v, want %+v", got, want)
	}
	if data, err := st.Reconstruct(keep); err != nil || !bytes.Equal(data, bytes.Join(keepChunks, nil)) {
		t.Fatalf("stream broken after tmp-file crash: %v", err)
	}
	for _, p := range []string{filepath.Join(dir, "shard-0000", walTmpName), filepath.Join(dir, recipeLogName+".tmp")} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("leftover temp file %s not removed", p)
		}
	}
}

// TestLostContainerFailsStop: a WAL that references a container whose
// file is missing (external loss — compaction never leaves this
// state) must refuse to open rather than silently truncate the WAL at
// the first dangling record and shrink intact containers to match.
func TestLostContainerFailsStop(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, ContainerSize: 1 << 10, Fsync: FsyncPolicy{Mode: FsyncNever}}
	st := openStore(t, dir, opts)
	var chunks [][]byte
	for i := 0; i < 8; i++ { // 2 KiB: spans two containers
		chunks = append(chunks, chunk256("lost", i))
	}
	ingestStream(t, st, "s", chunks)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "shard-0000", fmt.Sprintf(containerFormat, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, opts); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("open with a lost container = %v, want a fail-stop naming the missing file", err)
	}
}

// TestCompactionCrashAfterRenameBeforeUnlink models the final window:
// the checkpoint WAL is in place but the victim container files were
// never unlinked. Recovery must come back exact, and the next
// compaction pass sweeps the orphaned containers.
func TestCompactionCrashAfterRenameBeforeUnlink(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, ContainerSize: 1 << 10, Fsync: FsyncPolicy{Mode: FsyncNever}}
	st := openStore(t, dir, opts)
	var keepChunks, dropChunks [][]byte
	for i := 0; i < 4; i++ {
		keepChunks = append(keepChunks, chunk256("keep", i))
		dropChunks = append(dropChunks, chunk256("drop", i))
	}
	keep := ingestStream(t, st, "keep", keepChunks)
	ingestStream(t, st, "drop", dropChunks)
	ingestStream(t, st, "fill", [][]byte{chunk256("fill", 0)})
	if _, err := st.DeleteRecipe("drop"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(0.9); err != nil {
		t.Fatal(err)
	}
	want := st.Stats()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect a victim container file as if unlink never ran: a stale
	// orphan full of garbage the checkpoint WAL no longer references.
	orphan := filepath.Join(dir, "shard-0000", fmt.Sprintf(containerFormat, 1))
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("expected container 1 to have been dropped (err %v)", err)
	}
	if err := os.WriteFile(orphan, bytes.Repeat([]byte{0xdd}, 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	st = openStore(t, dir, opts)
	defer st.Close()
	if got := st.Stats(); got != want {
		t.Fatalf("recovered stats %+v, want %+v", got, want)
	}
	if data, err := st.Reconstruct(keep); err != nil || !bytes.Equal(data, bytes.Join(keepChunks, nil)) {
		t.Fatalf("stream broken with orphan container present: %v", err)
	}
	// The orphan holds zero live bytes; the next pass reclaims it.
	if _, err := st.Compact(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan container survived the sweeping pass")
	}
}
