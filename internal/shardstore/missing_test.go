package shardstore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"shredder/internal/dedup"
)

// testChunks builds n distinct chunks and their fingerprints.
func testChunks(n int) ([][]byte, []Hash) {
	chunks := make([][]byte, n)
	hs := make([]Hash, n)
	for i := range chunks {
		chunks[i] = []byte(fmt.Sprintf("chunk-%04d-%s", i, "padding-padding-padding"))
		hs[i] = dedup.Sum(chunks[i])
	}
	return chunks, hs
}

// TestMissingQuery: Missing returns exactly the ascending indices of
// absent fingerprints, agrees with HasBatch, and the backing gives the
// same answer as the store.
func TestMissingQuery(t *testing.T) {
	b, err := NewMemoryBacking(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	chunks, hs := testChunks(64)
	// Store the even-indexed chunks only.
	for i := 0; i < len(chunks); i += 2 {
		if _, _, err := s.Put(chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	missing := s.Missing(hs)
	var want []int
	for i := 1; i < len(hs); i += 2 {
		want = append(want, i)
	}
	if !reflect.DeepEqual(missing, want) {
		t.Fatalf("Missing = %v, want %v", missing, want)
	}
	has := s.HasBatch(hs)
	for i, ok := range has {
		if ok == (i%2 == 1) {
			t.Fatalf("HasBatch[%d] = %v disagrees with Missing", i, ok)
		}
	}
	if got := b.Missing(hs); !reflect.DeepEqual(got, missing) {
		t.Fatalf("backing Missing = %v, store says %v", got, missing)
	}
	if got := s.Missing(nil); len(got) != 0 {
		t.Fatalf("Missing(nil) = %v", got)
	}
}

// TestPinBatch: present fingerprints are answered with their refs and
// one reference taken — accounted exactly like duplicate Puts — while
// absent ones come back as ascending missing indices untouched.
func TestPinBatch(t *testing.T) {
	s, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	chunks, hs := testChunks(12)
	var wantRefs []Ref
	for i := 0; i < 6; i++ {
		ref, dup, err := s.Put(chunks[i])
		if err != nil || dup {
			t.Fatalf("seed put %d: %v %v", i, err, dup)
		}
		wantRefs = append(wantRefs, ref)
	}
	before := s.Stats()

	refs, missing, err := s.PinBatch(hs)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{6, 7, 8, 9, 10, 11}; !reflect.DeepEqual(missing, want) {
		t.Fatalf("missing = %v, want %v", missing, want)
	}
	var pinnedBytes int64
	for i := 0; i < 6; i++ {
		if refs[i] != wantRefs[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, refs[i], wantRefs[i])
		}
		if rc := s.Refcount(hs[i]); rc != 2 {
			t.Fatalf("refcount %d = %d after pin, want 2", i, rc)
		}
		pinnedBytes += refs[i].Length
	}
	for i := 6; i < 12; i++ {
		if (refs[i] != Ref{}) {
			t.Fatalf("missing index %d got ref %+v", i, refs[i])
		}
		if rc := s.Refcount(hs[i]); rc != 0 {
			t.Fatalf("absent fingerprint %d has refcount %d", i, rc)
		}
	}
	// The pins account exactly like 6 duplicate Puts.
	after := s.Stats()
	want := before
	want.Chunks += 6
	want.IndexHits += 6
	want.LogicalBytes += pinnedBytes
	if after != want {
		t.Fatalf("stats after pin %+v, want %+v", after, want)
	}
}

// TestPinBatchMatchesPutClassification: pin-then-upload produces the
// same refcounts and aggregate stats as plainly Put-ing the stream —
// the equivalence the dedup wire protocol is built on.
func TestPinBatchMatchesPutClassification(t *testing.T) {
	chunks, hs := testChunks(32)
	// stream: every chunk twice (first half unique, second half dups).
	stream := append(append([][]byte{}, chunks...), chunks...)

	ref, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ref.PutBatch(stream); err != nil {
		t.Fatal(err)
	}

	s, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: nothing present, upload all.
	refs, missing, err := s.PinBatch(hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != len(hs) {
		t.Fatalf("fresh store pinned %d", len(hs)-len(missing))
	}
	if _, _, err := s.PutHashedBatch(hs, chunks); err != nil {
		t.Fatal(err)
	}
	// Round 2: everything pins.
	refs, missing, err = s.PinBatch(hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("second round missing %v", missing)
	}
	_ = refs
	if a, b := ref.Stats(), s.Stats(); a != b {
		t.Fatalf("stats diverge: put-path %+v pin-path %+v", a, b)
	}
	for i := range hs {
		if a, b := ref.Refcount(hs[i]), s.Refcount(hs[i]); a != b {
			t.Fatalf("refcount %d diverges: put-path %d pin-path %d", i, a, b)
		}
	}
}

// TestPutHashedBatchValidates: mismatched lengths are rejected; the
// hashed batch classifies identically to PutBatch.
func TestPutHashedBatchValidates(t *testing.T) {
	s, err := New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	chunks, hs := testChunks(8)
	if _, _, err := s.PutHashedBatch(hs[:4], chunks); err == nil {
		t.Fatal("length mismatch accepted")
	}
	refs1, dup1, err := s.PutHashedBatch(hs, chunks)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	refs2, dup2, err := s2.PutBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refs1, refs2) || !reflect.DeepEqual(dup1, dup2) {
		t.Fatal("PutHashedBatch classification differs from PutBatch")
	}
}

// TestConcurrentPinAndPut races pinners against inserters of the same
// fingerprint set and checks the books balance: every pin that
// answered "present" took a counted reference, every miss left no
// trace, and chunks + hits + uniques line up. Run with -race this
// also proves the locking.
func TestConcurrentPinAndPut(t *testing.T) {
	s, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	chunks, hs := testChunks(128)
	const writers, pinners = 4, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.PutBatch(chunks); err != nil {
				t.Error(err)
			}
		}()
	}
	pinCounts := make([]int64, pinners)
	for p := 0; p < pinners; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			refs, missing, err := s.PinBatch(hs)
			if err != nil {
				t.Error(err)
				return
			}
			_ = refs
			pinCounts[p] = int64(len(hs) - len(missing))
		}(p)
	}
	wg.Wait()
	var pinned int64
	for _, n := range pinCounts {
		pinned += n
	}
	st := s.Stats()
	wantChunks := int64(writers*len(chunks)) + pinned
	if st.Chunks != wantChunks {
		t.Fatalf("chunks %d, want %d (%d pinned)", st.Chunks, wantChunks, pinned)
	}
	if st.UniqueChunks != int64(len(chunks)) {
		t.Fatalf("unique %d, want %d", st.UniqueChunks, len(chunks))
	}
	if st.IndexHits != wantChunks-int64(len(chunks)) {
		t.Fatalf("hits %d, want %d", st.IndexHits, wantChunks-int64(len(chunks)))
	}
	var rcTotal int64
	for i := range hs {
		rcTotal += s.Refcount(hs[i])
	}
	if rcTotal != wantChunks {
		t.Fatalf("refcount total %d, want %d", rcTotal, wantChunks)
	}
}
