// Positive suite for the durability analyzer: a persistence package
// (marked by declaring FsyncMode) with an unsynced commit point and
// apply-before-journal refcount orderings.
package persist

import "os"

type FsyncMode int

type ref struct{ h string }

type store struct {
	f *os.File
}

// Commit flushes but never syncs: an acked commit can still be lost.
func (s *store) Commit() error { // want `commit point Commit never reaches a file Sync`
	return s.flush()
}

func (s *store) flush() error { return nil }

// Checkpoint reaches Sync through a helper, so it is not flagged.
func (s *store) Checkpoint() error {
	if err := s.flush(); err != nil {
		return err
	}
	return s.fsyncLocked()
}

func (s *store) fsyncLocked() error { return s.f.Sync() }

// DeleteRecipe journals the tombstone and syncs before returning.
func (s *store) DeleteRecipe(name string) error {
	if err := s.appendTombstone(name); err != nil {
		return err
	}
	return s.fsyncLocked()
}

func (s *store) appendTombstone(name string) error { return nil }

// removeRecipe decrements refcounts before the tombstone is journaled:
// a crash in between loses chunks that the recipe still referenced.
func (s *store) removeRecipe(name string, refs []ref) error {
	s.releaseRefs(refs) // want `releaseRefs applies a refcount change before DeleteRecipe journals it`
	return s.DeleteRecipe(name)
}

// releaseRefs applies each decrement before logging its delta.
func (s *store) releaseRefs(refs []ref) {
	for _, r := range refs {
		s.release(r) // want `release applies a refcount change before LogRefDelta journals it`
	}
	for _, r := range refs {
		s.LogRefDelta(r.h, -1)
	}
}

func (s *store) release(r ref)               {}
func (s *store) LogRefDelta(h string, d int) {}
