// Package host models the CPU side of the Shredder pipeline: the
// 12-core Xeon X5650 host from §5.3, its RDTSC cycle counter (Table 2),
// the asynchronous-I/O reader/store path of §5.2.1, and the cost of
// host-only parallel chunking with and without a scalable allocator
// (the pthreads baseline of §5.1, Figure 12).
package host

import (
	"fmt"
	"time"
)

// CPU describes the host processor.
type CPU struct {
	// Cores is the number of hardware threads used (the paper runs the
	// pthreads implementation with 12).
	Cores int
	// ClockHz is the core clock; RDTSC ticks at this rate.
	ClockHz float64
}

// X5650 returns the paper's host: 12 Intel Xeon X5650 cores at
// 2.67 GHz.
func X5650() CPU {
	return CPU{Cores: 12, ClockHz: 2.67e9}
}

// RDTSCTicks converts a wall-clock duration into timestamp-counter
// ticks, the unit of Table 2.
func (c CPU) RDTSCTicks(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(d.Seconds() * c.ClockHz)
}

// IOModel models the SAN-attached reader and store path. The paper's
// Table 1 puts reader bandwidth at 2 GB/s; reads are issued as
// asynchronous I/O, with lio_listio batching several aio requests into
// one syscall (§5.2.1).
type IOModel struct {
	// ReaderBandwidth is the sequential ingest rate in bytes/second.
	ReaderBandwidth float64
	// StoreBandwidth is the rate of writing results (chunk boundaries
	// or chunk data) out; same SAN class as the reader.
	StoreBandwidth float64
	// SyscallCost is the kernel entry/exit plus completion-signal cost
	// per I/O submission batch.
	SyscallCost time.Duration
	// ListioBatch is the number of aio requests amortized per
	// lio_listio call; 1 models issuing aio_read per buffer.
	ListioBatch int
}

// DefaultIO returns the calibrated SAN model.
func DefaultIO() IOModel {
	return IOModel{
		ReaderBandwidth: 2e9,
		StoreBandwidth:  2e9,
		SyscallCost:     4 * time.Microsecond,
		ListioBatch:     8,
	}
}

// Validate checks the model.
func (m IOModel) Validate() error {
	if m.ReaderBandwidth <= 0 || m.StoreBandwidth <= 0 {
		return fmt.Errorf("host: I/O bandwidths must be positive")
	}
	if m.ListioBatch < 1 {
		return fmt.Errorf("host: lio batch must be >= 1")
	}
	return nil
}

// ReadTime models ingesting n bytes through the AIO reader.
func (m IOModel) ReadTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.syscallShare() + time.Duration(float64(n)/m.ReaderBandwidth*1e9)
}

// StoreTime models writing n bytes out.
func (m IOModel) StoreTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.syscallShare() + time.Duration(float64(n)/m.StoreBandwidth*1e9)
}

func (m IOModel) syscallShare() time.Duration {
	return m.SyscallCost / time.Duration(m.ListioBatch)
}

// Allocator identifies the memory-allocation strategy of the host-only
// parallel chunker (§5.1): glibc malloc serializes concurrent
// allocation on a global lock, while Hoard gives each thread its own
// heap.
type Allocator int

const (
	// Malloc is the default allocator with global-lock contention.
	Malloc Allocator = iota
	// Hoard is the scalable per-thread allocator the paper switches to.
	Hoard
)

func (a Allocator) String() string {
	if a == Hoard {
		return "hoard"
	}
	return "malloc"
}

// ChunkModel models host-only parallel Rabin chunking throughput for
// Figure 12's CPU bars.
type ChunkModel struct {
	CPU CPU
	// CyclesPerByte is the per-core cost of the table-driven rolling
	// fingerprint loop, including the boundary test.
	CyclesPerByte float64
	// MallocContention inflates runtime when the serializing allocator
	// is used from all cores at once.
	MallocContention float64
	// SyncOverhead covers the neighbor-synchronization merge step of
	// the SPMD scheme (§5.1, step 3).
	SyncOverhead float64
}

// DefaultChunkModel returns the calibrated host-chunking model: with
// Hoard, 12 cores sustain ~0.36 GB/s, the paper's optimized pthreads
// baseline (Figure 12; the GPU full pipeline beats it by over 5x).
func DefaultChunkModel() ChunkModel {
	return ChunkModel{
		CPU:              X5650(),
		CyclesPerByte:    85,
		MallocContention: 1.22,
		SyncOverhead:     0.03,
	}
}

// ChunkTime models chunking n bytes on the host with the given
// allocator.
func (m ChunkModel) ChunkTime(n int64, alloc Allocator) time.Duration {
	if n <= 0 {
		return 0
	}
	secs := float64(n) * m.CyclesPerByte / (m.CPU.ClockHz * float64(m.CPU.Cores))
	secs *= 1 + m.SyncOverhead
	if alloc == Malloc {
		secs *= m.MallocContention
	}
	return time.Duration(secs * 1e9)
}

// Throughput returns the modeled chunking rate in bytes/second.
func (m ChunkModel) Throughput(alloc Allocator) float64 {
	const probe = 1 << 30
	return float64(probe) / m.ChunkTime(probe, alloc).Seconds()
}
