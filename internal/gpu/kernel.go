package gpu

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"shredder/internal/chunker"
	"shredder/internal/rabin"
)

// MemoryMode selects how the chunking kernel reaches the data in global
// device memory.
type MemoryMode int

const (
	// NaiveGlobal has every thread read its substream directly from
	// global memory, byte by byte. With hundreds of threads the
	// accesses scatter across bank rows and thrash the sense
	// amplifiers (§3.2).
	NaiveGlobal MemoryMode = iota
	// Coalesced uses the paper's thread-cooperation scheme (§4.3,
	// Figure 10): the threads of a (half-)warp fetch each data block
	// with contiguous, aligned transactions into per-SM shared memory,
	// then process it from there.
	Coalesced
)

func (m MemoryMode) String() string {
	switch m {
	case NaiveGlobal:
		return "naive-global"
	case Coalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("MemoryMode(%d)", int(m))
	}
}

// KernelConfig configures the chunking kernel model.
type KernelConfig struct {
	// Spec is the device executing the kernel.
	Spec Spec
	// DRAM gives the global-memory timing model.
	DRAM DRAMTimings
	// ThreadsPerBlock is the number of threads per thread block; one
	// block is resident per SM, so total threads = SMs·ThreadsPerBlock
	// and the input is divided into that many substreams (§3.1).
	ThreadsPerBlock int
	// ComputeCyclesPerByte is the SP cost of the unrolled Rabin
	// inner loop (table lookups, shifts, compare) per input byte.
	ComputeCyclesPerByte float64
	// UnrolledFingerprint applies the §5.2.2 loop-unrolling and
	// instruction-level optimizations; disabling it inflates compute
	// cost by the RAW-stall factor of the in-order SPs.
	UnrolledFingerprint bool
	// DivergenceOptimized applies the §5.2.2 warp-divergence
	// restructuring; disabling it serializes the warp on every
	// boundary hit.
	DivergenceOptimized bool
	// TransactionBytes is the size of one coalesced global-memory
	// transaction (the contiguous, 16-byte-aligned access of §4.3).
	TransactionBytes int64
	// SharedAccessCyclesPerByte is the per-lane cost of reading a byte
	// from on-chip shared memory during the processing phase of the
	// coalesced path (Table 1: "L1 latency, a few cycles").
	SharedAccessCyclesPerByte float64
	// SampleWarps and SampleIters bound the micro-simulation used to
	// derive per-byte memory cost; the access pattern is periodic, so a
	// small sample converges.
	SampleWarps int
	SampleIters int
	// Workers is the number of host goroutines used for the functional
	// boundary scan; 0 means GOMAXPROCS.
	Workers int
}

// RAW-stall factor applied when the fingerprint loop is not unrolled
// (§5.2.2: the GPU lacks out-of-order execution to hide read-after-
// write dependencies).
const rawStallFactor = 1.7

// Cycles a warp loses on a divergent branch when a lane finds a chunk
// boundary.
const (
	divergenceCyclesOptimized = 32
	divergenceCyclesNaive     = 1024
)

// DefaultKernelConfig returns the calibrated C2050 kernel model.
func DefaultKernelConfig() KernelConfig {
	return KernelConfig{
		Spec:                      C2050(),
		DRAM:                      DefaultDRAMTimings(),
		ThreadsPerBlock:           128,
		ComputeCyclesPerByte:      40,
		UnrolledFingerprint:       true,
		DivergenceOptimized:       true,
		TransactionBytes:          128,
		SharedAccessCyclesPerByte: 12,
		SampleWarps:               4,
		SampleIters:               256,
	}
}

// Kernel is the GPU chunking kernel: functionally it computes exactly
// the raw content-defined boundaries of the sequential chunker; its
// timing model charges cycles according to the configured memory mode.
// Kernel is safe for concurrent use.
type Kernel struct {
	cfg KernelConfig
	chk *chunker.Chunker

	mu      sync.Mutex
	memMemo map[memKey]memProfile
}

type memKey struct {
	mode      MemoryMode
	substream int64
}

// memProfile is the outcome of the memory micro-simulation.
type memProfile struct {
	cyclesPerByte   float64 // memory cycles per byte, per SM
	conflictsPerByt float64 // bank conflicts per byte (modeled)
}

// NewKernel returns a kernel cutting with c on the configured device.
func NewKernel(cfg KernelConfig, c *chunker.Chunker) (*Kernel, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.ThreadsPerBlock < cfg.Spec.WarpSize {
		return nil, fmt.Errorf("gpu: threads per block %d below warp size %d", cfg.ThreadsPerBlock, cfg.Spec.WarpSize)
	}
	if cfg.TransactionBytes < 4 {
		return nil, fmt.Errorf("gpu: transaction size %d too small", cfg.TransactionBytes)
	}
	if cfg.ComputeCyclesPerByte <= 0 {
		return nil, fmt.Errorf("gpu: compute cycles per byte must be positive")
	}
	if cfg.SampleWarps < 1 || cfg.SampleIters < 1 {
		return nil, fmt.Errorf("gpu: micro-simulation sample sizes must be positive")
	}
	return &Kernel{cfg: cfg, chk: c, memMemo: make(map[memKey]memProfile)}, nil
}

// Config returns the kernel configuration.
func (k *Kernel) Config() KernelConfig { return k.cfg }

// Threads returns the total number of device threads launched.
func (k *Kernel) Threads() int { return k.cfg.Spec.SMs * k.cfg.ThreadsPerBlock }

// Result reports one kernel execution.
type Result struct {
	// Boundaries are the raw chunk end offsets (exclusive), identical
	// to chunker.Chunker.Boundaries on the same data.
	Boundaries []int64
	// Fingerprints carries the window fingerprint at each boundary.
	Fingerprints []rabin.Poly

	// Time is the modeled kernel execution time.
	Time time.Duration
	// ComputeCPB, MemoryCPB and DivergenceCPB decompose the modeled
	// cost in cycles per byte per SM.
	ComputeCPB, MemoryCPB, DivergenceCPB float64
	// BankConflicts estimates the total bank conflicts incurred.
	BankConflicts uint64
	// Throughput is bytes divided by Time.
	Throughput float64
}

// EstimateTime returns the modeled kernel time for n bytes in the given
// mode, without scanning any data. The pipeline simulations use this so
// per-buffer timing does not re-run the micro-simulation.
func (k *Kernel) EstimateTime(n int64, mode MemoryMode) time.Duration {
	if n <= 0 {
		return 0
	}
	_, t, _ := k.cost(n, mode)
	return t
}

// cost returns cycles-per-byte decomposition, total time and modeled
// conflicts for n bytes.
func (k *Kernel) cost(n int64, mode MemoryMode) ([3]float64, time.Duration, uint64) {
	prof := k.memProfile(n, mode)

	compute := k.cfg.ComputeCyclesPerByte
	if !k.cfg.UnrolledFingerprint {
		compute *= rawStallFactor
	}
	// A warp advances WarpSize bytes per ComputeCyclesPerByte cycles
	// (all lanes in parallel); warps within the SM serialize on the SPs.
	computeCPB := compute / float64(k.cfg.Spec.WarpSize)

	// Boundary probability is 2^-MaskBits; each boundary diverges the
	// warp for a mode-dependent number of cycles.
	divCycles := float64(divergenceCyclesOptimized)
	if !k.cfg.DivergenceOptimized {
		divCycles = divergenceCyclesNaive
	}
	freq := 1 / float64(uint64(1)<<uint(k.chk.Params().MaskBits))
	divCPB := freq * divCycles / float64(k.cfg.Spec.WarpSize)

	// In the coalesced path the processing phase reads every byte from
	// shared memory; the naive path reads straight from its registers
	// after the (much dearer) global load already charged above.
	var sharedCPB float64
	if mode == Coalesced {
		sharedCPB = k.cfg.SharedAccessCyclesPerByte / float64(k.cfg.Spec.WarpSize)
	}
	cpb := computeCPB + prof.cyclesPerByte + divCPB + sharedCPB
	// Redundant window warm-up at substream borders.
	eff := float64(n) + float64(k.Threads()-1)*float64(k.chk.Params().Window-1)
	seconds := eff * cpb / (k.cfg.Spec.ClockHz * float64(k.cfg.Spec.SMs))
	// The device can never beat its peak memory bandwidth for a
	// single-pass scan.
	if floor := float64(n) / k.cfg.Spec.MemBandwidth; seconds < floor {
		seconds = floor
	}
	conflicts := uint64(prof.conflictsPerByt * float64(n))
	return [3]float64{computeCPB, prof.cyclesPerByte, divCPB}, time.Duration(seconds * 1e9), conflicts
}

// memProfile runs (or recalls) the micro-simulation of the memory
// system for the given buffer size and mode.
func (k *Kernel) memProfile(n int64, mode MemoryMode) memProfile {
	threads := int64(k.Threads())
	sub := (n + threads - 1) / threads
	key := memKey{mode: mode, substream: sub}
	if mode == Coalesced {
		key.substream = 0 // pattern independent of substream layout
	}
	k.mu.Lock()
	if p, ok := k.memMemo[key]; ok {
		k.mu.Unlock()
		return p
	}
	k.mu.Unlock()

	var p memProfile
	switch mode {
	case NaiveGlobal:
		p = k.simulateNaive(sub)
	case Coalesced:
		p = k.simulateCoalesced()
	default:
		panic("gpu: unknown memory mode")
	}
	k.mu.Lock()
	k.memMemo[key] = p
	k.mu.Unlock()
	return p
}

// simulateNaive models SampleWarps warps advancing byte by byte: lane
// t of a warp reads substream base t·sub + iteration. The per-bank
// sense amplifiers thrash because concurrent lanes own distant rows.
func (k *Kernel) simulateNaive(sub int64) memProfile {
	d := NewDRAM(k.cfg.DRAM)
	ws := k.cfg.Spec.WarpSize
	addrs := make([]int64, ws)
	var cycles int64
	var bytes int64
	for w := 0; w < k.cfg.SampleWarps; w++ {
		base := int64(w*ws) * sub
		for it := 0; it < k.cfg.SampleIters; it++ {
			for lane := 0; lane < ws; lane++ {
				addrs[lane] = base + int64(lane)*sub + int64(it)
			}
			cycles += d.AccessBatch(addrs, 1)
			bytes += int64(ws)
		}
	}
	return memProfile{
		cyclesPerByte:   float64(cycles) / float64(bytes),
		conflictsPerByt: float64(d.Conflicts) / float64(bytes),
	}
}

// simulateCoalesced models the cooperative tile load of §4.3: one
// shared-memory tile (SharedMemPerSM bytes) is fetched with contiguous
// aligned TransactionBytes transactions, a warp issuing WarpSize of
// them concurrently; processing then happens from shared memory at L1
// latency (charged as compute, not memory).
func (k *Kernel) simulateCoalesced() memProfile {
	d := NewDRAM(k.cfg.DRAM)
	ws := k.cfg.Spec.WarpSize
	tile := int64(k.cfg.Spec.SharedMemPerSM)
	tx := k.cfg.TransactionBytes
	addrs := make([]int64, 0, ws)
	var cycles int64
	var bytes int64
	// Simulate a handful of consecutive tiles so row-boundary effects
	// are represented proportionally.
	for t := 0; t < k.cfg.SampleWarps; t++ {
		base := tile * int64(t)
		for off := int64(0); off < tile; off += tx * int64(ws) {
			addrs = addrs[:0]
			for lane := 0; lane < ws && off+int64(lane)*tx < tile; lane++ {
				addrs = append(addrs, base+off+int64(lane)*tx)
			}
			cycles += d.AccessBatch(addrs, tx)
			bytes += int64(len(addrs)) * tx
		}
	}
	return memProfile{
		cyclesPerByte:   float64(cycles) / float64(bytes),
		conflictsPerByt: float64(d.Conflicts) / float64(bytes),
	}
}

// Run executes the chunking kernel over data: it returns the raw
// content-defined boundaries (bit-identical to the sequential
// reference) plus the modeled execution report. The scan itself runs
// on host goroutines purely to make the simulation fast; the timing in
// the result is entirely the device model's.
func (k *Kernel) Run(data []byte, mode MemoryMode) (*Result, error) {
	if int64(len(data)) > k.cfg.Spec.GlobalMemBytes {
		return nil, fmt.Errorf("gpu: buffer of %d bytes exceeds device memory %d", len(data), k.cfg.Spec.GlobalMemBytes)
	}
	res := &Result{}
	if len(data) > 0 {
		res.Boundaries, res.Fingerprints = k.scan(data)
	}
	cpb, t, conflicts := k.cost(int64(len(data)), mode)
	res.ComputeCPB, res.MemoryCPB, res.DivergenceCPB = cpb[0], cpb[1], cpb[2]
	res.Time = t
	res.BankConflicts = conflicts
	if t > 0 {
		res.Throughput = float64(len(data)) / t.Seconds()
	}
	return res, nil
}

// scan computes raw boundaries in parallel. Worker ranges are
// contiguous, and each worker warms its window from Window−1 bytes
// before its range, so the union over workers equals the sequential
// evaluate-every-position semantics of chunker.Boundaries.
func (k *Kernel) scan(data []byte) ([]int64, []rabin.Poly) {
	workers := k.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(data)
	if workers > n {
		workers = n
	}
	type part struct {
		cuts []int64
		fps  []rabin.Poly
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	chunkLen := (n + workers - 1) / workers
	tab := k.chk.Table()
	win := tab.Size()
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunkLen
		hi := lo + chunkLen
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			w := rabin.NewWindow(tab)
			warm := lo - (win - 1)
			if warm < 0 {
				warm = 0
			}
			for i := warm; i < lo; i++ {
				w.Slide(data[i])
			}
			// Full() matches the sequential semantics in every case:
			// when lo >= win-1 the warm-up provides win-1 bytes, so the
			// window is full from the first in-range position (as it
			// would be sequentially); when lo < win-1 the warm-up is
			// clamped to offset 0 and the fill count equals the global
			// position, so Full() flips exactly at position win-1.
			var p part
			for i := lo; i < hi; i++ {
				fp := w.Slide(data[i])
				if w.Full() && k.chk.IsBoundary(fp) {
					p.cuts = append(p.cuts, int64(i)+1)
					p.fps = append(p.fps, fp)
				}
			}
			parts[wi] = p
		}(wi, lo, hi)
	}
	wg.Wait()
	var cuts []int64
	var fps []rabin.Poly
	for _, p := range parts {
		cuts = append(cuts, p.cuts...)
		fps = append(fps, p.fps...)
	}
	return cuts, fps
}
