// Package persist is the durable backing for shardstore.Store: an
// on-disk, crash-recoverable persistence layer for the shredderd
// dedup service. Each shard of the fingerprint space owns a directory
// holding append-only container files (the chunk bytes) and a
// write-ahead log journaling every index mutation — inserts, refcount
// deltas — as length+CRC-framed records; stream recipes are journaled
// in a store-level log with the same codec. Opening an existing data
// directory replays the logs against the container bytes actually on
// disk, tolerating a torn final record (the tail past the last clean
// record is truncated away, files land back on a consistent boundary),
// and rebuilds exactly the index, refcounts, recipes and Stats the
// store had at the journal's horizon.
//
// Durability is governed by an FsyncPolicy: FsyncAlways makes every
// acknowledged batch and recipe commit crash-durable, FsyncInterval
// bounds the loss window with a background fsync loop, FsyncNever
// leaves it to the page cache (still safe against process death).
//
// Layout of a data directory:
//
//	<dir>/MANIFEST          shard count + container size, fixed at creation
//	<dir>/recipes.wal       store-level recipe journal
//	<dir>/shard-0000/wal    per-shard write-ahead log
//	<dir>/shard-0000/c-000000.dat
//	<dir>/shard-0000/c-000001.dat ...
package persist

import (
	"encoding/binary"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"shredder/internal/dedup"
	"shredder/internal/obs"
	"shredder/internal/shardstore"
)

// Options configures a data directory. On first open they fix the
// layout (and are written to MANIFEST); on reopen zero values adopt
// the manifest and non-zero values must match it.
type Options struct {
	// Shards is the shard count (a power of two in [1,
	// shardstore.MaxShards]; 0 means 16 on creation, manifest value on
	// reopen).
	Shards int
	// ContainerSize caps each container file (0 means
	// dedup.DefaultContainerSize on creation, manifest value on reopen).
	ContainerSize int64
	// Fsync is the durability policy (zero value is FsyncAlways).
	Fsync FsyncPolicy
	// VerifyOnRecover re-hashes every chunk during recovery and treats
	// a fingerprint mismatch like a torn record (replay stops there and
	// the tail is cut). This catches container bytes the filesystem
	// lost in ways a size check cannot see (e.g. zero-filled pages
	// after power loss under relaxed fsync), at the cost of reading and
	// hashing every stored byte at open.
	VerifyOnRecover bool
	// CommitWindow, when positive and Fsync is FsyncAlways, switches
	// the backing to group commit: commit points stage and flush their
	// records but leave the fsync to a shared syncer goroutine that
	// syncs at most once per window. Callers regain the durable-before-
	// ack guarantee through Barrier, which blocks until the sync round
	// covering their records has completed and returns its real outcome
	// (shardstore calls it before every ack). Concurrent sessions inside
	// one window then share a single fsync pass instead of paying one
	// each. Ignored under FsyncInterval and FsyncNever.
	CommitWindow time.Duration
	// Logger receives persistence warnings (today: a failing background
	// fsync under FsyncInterval). Nil means slog.Default().
	Logger *slog.Logger
	// Obs, when set, receives the backing's persistence metric families
	// (WAL appends, fsync count and latency, recovery time, checkpoint
	// count). Nil means no instrumentation.
	Obs *obs.Registry
}

// Backing is the durable shardstore.Backing rooted at one data
// directory. Obtain one with Open, hand it to shardstore.Open (or use
// OpenStore for both), and Close it when done — Close flushes and
// fsyncs everything regardless of policy, so a clean shutdown is
// always fully durable.
type Backing struct {
	dir    string
	opts   Options
	shards []*diskShard
	met    pmetrics
	logger *slog.Logger
	// group is the group-commit syncer (FsyncAlways + CommitWindow);
	// nil means every commit point fsyncs inline and Barrier is a no-op.
	group *groupCommitter

	rmu         sync.Mutex
	span        *obs.Span // active request span for recipe-journal I/O
	recipeLog   *os.File
	recipeSize  int64
	recipeDirty bool
	// recipeFailed is set when a journal rewrite died between closing
	// the old file and installing the new one: the backing fail-stops
	// recipe writes with the original fault instead of a bare "closed".
	recipeFailed error
	// recipes is the live recipe set (recovered at open, maintained by
	// CommitRecipe/DeleteRecipe) and rsizes the framed journal bytes
	// each live name currently occupies; rlive is their running sum —
	// together they tell the journal compactor how much of the log is
	// dead without rescanning the map on every commit.
	recipes map[string]shardstore.Recipe
	rsizes  map[string]int64
	rlive   int64

	tickStop chan struct{}
	tickDone chan struct{}

	closeMu sync.Mutex
	closed  bool
}

const (
	manifestName  = "MANIFEST"
	recipeLogName = "recipes.wal"
	// manifestVersion 2 switched recipes to content-addressed
	// fingerprint lists (v1 journaled physical refs, which compaction
	// would invalidate).
	manifestVersion = 2
)

// recipeLogSlack is how many dead bytes the recipe journal tolerates
// before a delete or replace triggers a rewrite: the log is compacted
// when it exceeds this floor and less than half of it is live.
const recipeLogSlack = 64 << 10

// Open creates or reopens a data directory.
func Open(dir string, opts Options) (*Backing, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	adopted, err := loadOrCreateManifest(dir, opts)
	if err != nil {
		return nil, err
	}
	opts.Shards, opts.ContainerSize = adopted.Shards, adopted.ContainerSize
	b := &Backing{dir: dir, opts: opts, shards: make([]*diskShard, opts.Shards)}
	b.logger = opts.Logger
	if b.logger == nil {
		b.logger = slog.Default()
	}
	always := opts.Fsync.Mode == FsyncAlways
	grouped := always && opts.CommitWindow > 0
	for i := range b.shards {
		b.shards[i] = newDiskShard(dir, i, opts.ContainerSize, always, grouped, opts.VerifyOnRecover, &b.met)
	}
	if err := b.openRecipes(); err != nil {
		return nil, err
	}
	if grouped {
		b.group = newGroupCommitter(b, opts.CommitWindow)
	}
	if opts.Fsync.Mode == FsyncInterval {
		iv := opts.Fsync.Interval
		if iv <= 0 {
			iv = DefaultFsyncInterval
		}
		b.tickStop = make(chan struct{})
		b.tickDone = make(chan struct{})
		go b.fsyncLoop(iv)
	}
	b.Instrument(opts.Obs)
	return b, nil
}

// OpenStore opens the data directory and a store on top of it in one
// step, closing the backing if recovery fails.
func OpenStore(dir string, opts Options) (*shardstore.Store, error) {
	b, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	st, err := shardstore.Open(b)
	if err != nil {
		_ = b.Close()
		return nil, err
	}
	return st, nil
}

// loadOrCreateManifest reads the manifest, creating it (atomically,
// via rename) on first open, and reconciles it with the options.
func loadOrCreateManifest(dir string, opts Options) (Options, error) {
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var version, shards int
		var containerSize int64
		if _, serr := fmt.Sscanf(string(raw), "shredder-persist v%d\nshards %d\ncontainer-size %d\n",
			&version, &shards, &containerSize); serr != nil {
			return Options{}, fmt.Errorf("persist: malformed manifest %s: %w", path, serr)
		}
		if version == 1 {
			return Options{}, fmt.Errorf("persist: data dir %s is format v1 (location-addressed recipes, predates GC); re-ingest into a fresh directory", dir)
		}
		if version != manifestVersion {
			return Options{}, fmt.Errorf("persist: manifest version %d not supported", version)
		}
		if opts.Shards != 0 && opts.Shards != shards {
			return Options{}, fmt.Errorf("persist: data dir has %d shards, options ask for %d", shards, opts.Shards)
		}
		if opts.ContainerSize != 0 && opts.ContainerSize != containerSize {
			return Options{}, fmt.Errorf("persist: data dir has container size %d, options ask for %d", containerSize, opts.ContainerSize)
		}
		return Options{Shards: shards, ContainerSize: containerSize}, nil
	case os.IsNotExist(err):
		if opts.Shards == 0 {
			opts.Shards = 16
		}
		if opts.Shards < 1 || opts.Shards > shardstore.MaxShards || opts.Shards&(opts.Shards-1) != 0 {
			return Options{}, fmt.Errorf("persist: shard count %d is not a power of two in [1, %d]", opts.Shards, shardstore.MaxShards)
		}
		if opts.ContainerSize < 0 {
			return Options{}, fmt.Errorf("persist: negative container size %d", opts.ContainerSize)
		}
		if opts.ContainerSize == 0 {
			opts.ContainerSize = dedup.DefaultContainerSize
		}
		body := fmt.Sprintf("shredder-persist v%d\nshards %d\ncontainer-size %d\n", manifestVersion, opts.Shards, opts.ContainerSize)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
			return Options{}, err
		}
		if err := os.Rename(tmp, path); err != nil {
			return Options{}, err
		}
		if err := syncDir(dir); err != nil {
			return Options{}, err
		}
		return opts, nil
	default:
		return Options{}, err
	}
}

// openRecipes opens the recipe journal and replays it — commits and
// tombstones, last record per name wins — truncating a torn tail just
// like a shard WAL.
func (b *Backing) openRecipes() error {
	path := filepath.Join(b.dir, recipeLogName)
	// A leftover compaction temp file means a crash hit before the
	// atomic rename: the old journal is authoritative.
	if err := os.Remove(path + ".tmp"); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		_ = f.Close()
		return err
	}
	recipes := make(map[string]shardstore.Recipe)
	rsizes := make(map[string]int64)
	clean, _ := scanRecords(raw, func(body []byte) error {
		if len(body) == 0 {
			return errTornRecord
		}
		switch body[0] {
		case recRecipe:
			name, r, derr := decodeRecipe(body)
			if derr != nil {
				return errTornRecord
			}
			recipes[name] = r
			rsizes[name] = int64(recHeaderSize + len(body))
		case recRecipeDelete:
			name, derr := decodeRecipeDelete(body)
			if derr != nil {
				return errTornRecord
			}
			delete(recipes, name)
			delete(rsizes, name)
		default:
			return errTornRecord
		}
		return nil
	})
	if int64(clean) < int64(len(raw)) {
		if err := f.Truncate(int64(clean)); err != nil {
			_ = f.Close()
			return err
		}
	}
	b.recipeLog = f
	b.recipeSize = int64(clean)
	b.recipes = recipes
	b.rsizes = rsizes
	b.rlive = 0
	for _, n := range rsizes {
		b.rlive += n
	}
	return nil
}

// NumShards reports the manifest's shard count.
func (b *Backing) NumShards() int { return len(b.shards) }

// Shard returns stripe i's backing.
func (b *Backing) Shard(i int) shardstore.ShardBacking { return b.shards[i] }

// Missing reports which fingerprints no shard has a chunk for, as
// ascending indices into hs: the entries recovered at open plus every
// Append since — the same answer a Store on this backing gives.
func (b *Backing) Missing(hs []shardstore.Hash) []int {
	mask := uint32(len(b.shards) - 1)
	missing := make([]int, 0, len(hs))
	for i := range hs {
		sh := b.shards[binary.BigEndian.Uint32(hs[i][:4])&mask]
		if !sh.has(hs[i]) {
			missing = append(missing, i)
		}
	}
	return missing
}

// SetSpan installs (or, with nil, clears) the span the recipe
// journal's appends and fsyncs should attach to — shardstore's
// spanSink hook for the CommitRecipe/DeleteRecipe path.
func (b *Backing) SetSpan(sp *obs.Span) {
	b.rmu.Lock()
	b.span = sp
	b.rmu.Unlock()
}

// CommitRecipe journals one named recipe; under FsyncAlways it is
// crash-durable before the call returns. A recipe too large to frame
// is rejected up front — recovery would read an oversized record as a
// torn tail, silently dropping it and every recipe after it.
func (b *Backing) CommitRecipe(name string, r shardstore.Recipe) error {
	body := encodeRecipe(name, r)
	if len(body) > maxRecordSize {
		return fmt.Errorf("persist: recipe %q encodes to %d bytes, over the %d-byte record limit", name, len(body), maxRecordSize)
	}
	b.rmu.Lock()
	defer b.rmu.Unlock()
	if err := b.appendRecipeRecordLocked(body); err != nil {
		return err
	}
	b.recipes[name] = r
	size := int64(recHeaderSize + len(body))
	b.rlive += size - b.rsizes[name]
	b.rsizes[name] = size
	return b.maybeCompactRecipeLogLocked()
}

// DeleteRecipe journals a recipe tombstone; under FsyncAlways it is
// crash-durable before the call returns — which is what lets the store
// release the recipe's chunk references afterwards without ever
// leaving a recoverable recipe that points at released chunks.
func (b *Backing) DeleteRecipe(name string) error {
	b.rmu.Lock()
	defer b.rmu.Unlock()
	if err := b.appendRecipeRecordLocked(encodeRecipeDelete(name)); err != nil {
		return err
	}
	delete(b.recipes, name)
	b.rlive -= b.rsizes[name]
	delete(b.rsizes, name)
	return b.maybeCompactRecipeLogLocked()
}

// appendRecipeRecordLocked frames body onto the journal, honoring the
// fsync policy. Under group commit the inline fsync is skipped: the
// record becomes durable at the next syncer round, which the store
// waits for (Barrier) before acking. The caller holds b.rmu.
func (b *Backing) appendRecipeRecordLocked(body []byte) error {
	if err := b.met.syncFailed(); err != nil {
		return err
	}
	if b.recipeFailed != nil {
		return fmt.Errorf("persist: recipe journal unavailable after failed rewrite: %w", b.recipeFailed)
	}
	if b.recipeLog == nil {
		return errClosed
	}
	if b.span != nil {
		defer b.span.Child("recipe_append", obs.Int("bytes", int64(len(body)))).End()
	}
	rec := appendRecord(nil, body)
	if _, err := b.recipeLog.WriteAt(rec, b.recipeSize); err != nil {
		return err
	}
	b.recipeSize += int64(len(rec))
	b.recipeDirty = true
	b.met.recipeRecords.Add(1)
	b.met.flushedBytes.Add(int64(len(rec)))
	if b.opts.Fsync.Mode == FsyncAlways && b.group == nil {
		return b.syncRecipesLocked()
	}
	return nil
}

// maybeCompactRecipeLogLocked rewrites the recipe journal when most of
// it is dead bytes (replaced commits and tombstones): the live set is
// written to a temp file, fsynced, and atomically renamed over the
// journal, so retention churn cannot grow the log without bound. The
// caller holds b.rmu.
func (b *Backing) maybeCompactRecipeLogLocked() error {
	if b.recipeSize <= recipeLogSlack || b.recipeSize <= 2*b.rlive {
		return nil
	}
	var buf []byte
	sizes := make(map[string]int64, len(b.recipes))
	for name, r := range b.recipes {
		body := encodeRecipe(name, r)
		sizes[name] = int64(recHeaderSize + len(body))
		buf = appendRecord(buf, body)
	}
	f, failStop, err := swapJournal(b.dir, filepath.Join(b.dir, recipeLogName), b.recipeLog, buf)
	if err != nil {
		if failStop {
			b.recipeLog, b.recipeFailed = nil, err
		}
		return err
	}
	b.recipeLog = f
	b.recipeSize = int64(len(buf))
	b.recipeDirty = false
	b.rsizes = sizes
	b.rlive = int64(len(buf)) // a fresh journal is 100% live records
	return nil
}

func (b *Backing) syncRecipesLocked() error {
	if !b.recipeDirty {
		return nil
	}
	if err := b.met.timedSync(b.recipeLog, b.span); err != nil {
		return err
	}
	b.recipeDirty = false
	return nil
}

// Recipes returns a copy of the live recipe set (replayed at open,
// maintained by CommitRecipe/DeleteRecipe since). The copy is the
// caller's to keep: later commits and deletes never mutate it.
func (b *Backing) Recipes() (map[string]shardstore.Recipe, error) {
	b.rmu.Lock()
	defer b.rmu.Unlock()
	out := make(map[string]shardstore.Recipe, len(b.recipes))
	for name, r := range b.recipes {
		out[name] = r
	}
	return out, nil
}

// Sync flushes and fsyncs every shard and the recipe journal. Shards
// sync concurrently — their files are independent and the filesystem
// merges overlapping journal flushes, which is what makes a group-
// commit round cheap — but always before the recipe journal, so a
// recipe is never more durable than the inserts it references.
func (b *Backing) Sync() error {
	errs := make([]error, len(b.shards))
	var wg sync.WaitGroup
	for i, sh := range b.shards {
		wg.Add(1)
		go func(i int, sh *diskShard) {
			defer wg.Done()
			errs[i] = sh.sync()
		}(i, sh)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err != nil {
			first = err
			break
		}
	}
	b.rmu.Lock()
	if b.recipeLog != nil {
		if err := b.syncRecipesLocked(); err != nil && first == nil {
			first = err
		}
	}
	b.rmu.Unlock()
	return first
}

// Barrier blocks until every record staged before the call is durable
// under the group-commit policy and returns the real outcome of the
// sync pass that covered it. Without a group committer it is a no-op:
// FsyncAlways commit points already synced inline, and the interval and
// never policies deliberately trade a loss window for throughput.
func (b *Backing) Barrier() error {
	if b.group == nil {
		return nil
	}
	return b.group.wait()
}

// fsyncLoop is the FsyncInterval background loop. A sync failure is
// fatal: the error is latched so every subsequent commit fails loudly
// with it (and persist_sync_errors_total counts it), logged, and the
// loop exits — silently retrying against a disk that failed an fsync
// would only hide which acknowledged writes actually landed.
func (b *Backing) fsyncLoop(every time.Duration) {
	defer close(b.tickDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-b.tickStop:
			return
		case <-t.C:
			if err := b.Sync(); err != nil {
				b.met.latchFault(err)
				b.logger.Error("persist: background fsync failed; failing stop",
					"dir", b.dir, "err", err)
				return
			}
		}
	}
}

// Close flushes, fsyncs and releases everything. A closed backing's
// store must not be used further. Close is idempotent.
func (b *Backing) Close() error {
	b.closeMu.Lock()
	defer b.closeMu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if b.tickStop != nil {
		close(b.tickStop)
		<-b.tickDone
	}
	if b.group != nil {
		b.group.close()
	}
	err := b.Sync()
	for _, sh := range b.shards {
		if cerr := sh.close(); err == nil {
			err = cerr
		}
	}
	b.rmu.Lock()
	if b.recipeLog != nil {
		if cerr := b.recipeLog.Close(); err == nil {
			err = cerr
		}
		b.recipeLog = nil
	}
	b.rmu.Unlock()
	return err
}

var _ shardstore.Backing = (*Backing)(nil)
