// regionScanner implementations for the two engines. Each has to prove
// two properties to plug into Parallel:
//
//   - the fingerprint at a position is a pure function of a bounded
//     suffix of preceding bytes (overlap), so a region scan warmed on
//     that suffix emits candidates whose fingerprints exactly equal the
//     engine's own; and
//   - resolve replays the engine's sequential policy (min/max, mask
//     normalization) over the candidate list so the final chunks are
//     byte-identical to the engine's Split.
//
// Rabin's window never resets across chunk boundaries, so candidates
// are exact everywhere and resolve is exactly chunker.ApplyLimits.
// FastCDC restarts its gear hash at each chunk start and skips the
// first MinSize bytes, so a candidate's fingerprint equals the
// in-chunk hash only once the chunk-relative position has absorbed a
// full gear window (gearWarm bytes); resolve recomputes the short
// prefix zone directly and switches to candidates past it.
package chunk

import (
	"shredder/internal/rabin"
)

// --- Rabin ---

var _ regionScanner = (*Rabin)(nil)

// overlap is the window warmup: the fingerprint at position i covers
// data[i-Window+1 : i+1], so a region scan needs Window-1 bytes of
// runway.
func (r *Rabin) overlap() int { return r.chk.Params().Window - 1 }

// scanRegion emits every full-window marker match in data[lo:hi],
// warming the window on the preceding bytes so each fingerprint equals
// a sequential scan's at the same position.
func (r *Rabin) scanRegion(data []byte, lo, hi int, emit func(candidate)) {
	w := rabin.NewWindow(r.chk.Table())
	warm := lo - r.overlap()
	if warm < 0 {
		warm = 0
	}
	for _, b := range data[warm:lo] {
		w.Slide(b)
	}
	for i := lo; i < hi; i++ {
		fp := w.Slide(data[i])
		if w.Full() && r.chk.IsBoundary(fp) {
			emit(candidate{pos: int64(i) + 1, fp: uint64(fp)})
		}
	}
}

// resolve is chunker.ApplyLimits over the candidates, started at an
// arbitrary offset: forced cuts every MaxSize bytes between content
// boundaries, content cuts only MinSize past the previous cut, and a
// forced tail at the view end. Equivalent to chunker.Split restricted
// to data[start:] (Split and ApplyLimits agree; see their tests).
func (r *Rabin) resolve(data []byte, start int, cands []candidate) []Chunk {
	p := r.chk.Params()
	min := int64(p.MinSize)
	if min == 0 {
		min = 1 // a boundary can never produce an empty chunk
	}
	max := int64(p.MaxSize)
	var out []Chunk
	st := int64(start)
	cut := func(end int64, fp uint64, forced bool) {
		out = append(out, Chunk{Offset: st, Length: end - st, Fingerprint: fp, Forced: forced})
		st = end
	}
	for _, c := range cands {
		if c.pos <= st {
			continue
		}
		if max > 0 {
			for c.pos-st > max {
				cut(st+max, 0, true)
			}
		}
		if c.pos-st >= min {
			cut(c.pos, c.fp, false)
		}
	}
	total := int64(len(data))
	if max > 0 {
		for total-st > max {
			cut(st+max, 0, true)
		}
	}
	if total > st {
		cut(total, 0, true)
	}
	return out
}

// --- FastCDC ---

// gearWarm is the effective gear-hash window: the update
// fp = fp<<1 + gear[b] shifts a byte's contribution out of the 64-bit
// word after 64 more bytes, so the hash at any position is a pure
// function of the last gearWarm bytes.
const gearWarm = 64

var _ regionScanner = (*FastCDC)(nil)

// overlap is the gear warmup: gearWarm-1 preceding bytes fully
// determine the hash at the first scanned position.
func (e *FastCDC) overlap() int { return gearWarm - 1 }

// scanRegion emits every position in data[lo:hi] where the rolling
// gear hash satisfies the loose mask. maskL's bits are a subset of
// maskS's, so the loose matches are a superset of both phases' real
// cuts; resolve re-applies maskS where the normalized policy requires
// it.
func (e *FastCDC) scanRegion(data []byte, lo, hi int, emit func(candidate)) {
	var fp uint64
	warm := lo - e.overlap()
	if warm < 0 {
		warm = 0
	}
	for _, b := range data[warm:lo] {
		fp = fp<<1 + e.gear[b]
	}
	for i := lo; i < hi; i++ {
		fp = fp<<1 + e.gear[data[i]]
		if fp&e.maskL == 0 {
			emit(candidate{pos: int64(i) + 1, fp: fp})
		}
	}
}

// resolve replays cut chunk by chunk. ci is a monotonic cursor into
// cands shared across chunks, so the whole resolve touches each
// candidate a constant number of times.
func (e *FastCDC) resolve(data []byte, start int, cands []candidate) []Chunk {
	var out []Chunk
	s, ci := start, 0
	for s < len(data) {
		n, fp, forced := e.resolveCut(data, s, cands, &ci)
		out = append(out, Chunk{Offset: int64(s), Length: int64(n), Fingerprint: fp, Forced: forced})
		s += n
	}
	return out
}

// resolveCut reproduces cut(data[s:]) using candidates where they are
// exact. A candidate's fingerprint carries up to gearWarm bytes of
// pre-chunk history, while the in-chunk hash starts fresh at
// chunk-relative MinSize; the two coincide exactly once the in-chunk
// hash has absorbed a full gear window, i.e. at chunk-relative
// boundary positions >= MinSize+gearWarm-1. Below that threshold
// (zone A) the hash is recomputed directly, exactly as cut does.
func (e *FastCDC) resolveCut(data []byte, s int, cands []candidate, ci *int) (n int, fp uint64, forced bool) {
	rest := len(data) - s
	if rest <= e.min {
		return rest, 0, true
	}
	limit := rest
	if limit > e.max {
		limit = e.max
	}
	normal := e.avg
	if normal > limit {
		normal = limit
	}
	zoneA := e.min + gearWarm - 1
	var h uint64
	i := e.min
	for ; i < normal && i < zoneA; i++ {
		h = h<<1 + e.gear[data[s+i]]
		if h&e.maskS == 0 {
			return i + 1, h, false
		}
	}
	for ; i < limit && i < zoneA; i++ {
		h = h<<1 + e.gear[data[s+i]]
		if h&e.maskL == 0 {
			return i + 1, h, false
		}
	}
	if i >= limit {
		return limit, 0, true
	}
	// Zone B: candidate fingerprints are exact from here on.
	for *ci < len(cands) && cands[*ci].pos <= int64(s+i) {
		*ci++
	}
	for j := *ci; j < len(cands); j++ {
		bi := int(cands[j].pos) - 1 - s // chunk-relative boundary byte
		if bi >= limit {
			break
		}
		if bi < normal && cands[j].fp&e.maskS != 0 {
			continue // loose match inside the strict phase
		}
		return bi + 1, cands[j].fp, false
	}
	return limit, 0, true
}
