package ingest

import "testing"

func FuzzHelloCodec(f *testing.F) {
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := decodeHello(b)
		if err != nil {
			return
		}
		_ = encodeHello(h)
	})
}
