// Negative suite for the durability analyzer: every commit point
// reaches a sync and every refcount change is journaled first.
package persist

import "os"

type FsyncMode int

type ref struct{ h string }

type store struct {
	f      *os.File
	always bool
}

// Commit honors the fsync policy before acking.
func (s *store) Commit() error {
	if err := s.flush(); err != nil {
		return err
	}
	if s.always {
		return s.fsyncLocked()
	}
	return nil
}

func (s *store) flush() error       { return nil }
func (s *store) fsyncLocked() error { return s.f.Sync() }

func (s *store) Checkpoint() error { return s.fsyncLocked() }

func (s *store) DeleteRecipe(name string) error {
	if err := s.appendTombstone(name); err != nil {
		return err
	}
	return s.fsyncLocked()
}

func (s *store) appendTombstone(name string) error { return nil }

// removeRecipe journals the tombstone durably, then applies.
func (s *store) removeRecipe(name string, refs []ref) error {
	if err := s.DeleteRecipe(name); err != nil {
		return err
	}
	s.releaseRefs(refs)
	return nil
}

// releaseRefs journals each delta before applying it.
func (s *store) releaseRefs(refs []ref) {
	for _, r := range refs {
		s.LogRefDelta(r.h, -1)
		s.release(r)
	}
}

func (s *store) release(r ref)               {}
func (s *store) LogRefDelta(h string, d int) {}
