// Package obs is the service's dependency-free observability layer: a
// metrics registry of atomic counters, gauges and fixed-bucket
// histograms that renders the Prometheus text exposition format (plus a
// JSON snapshot for CI artifacts), and an admin HTTP handler exposing
// /metrics, /healthz, drain-aware /readyz, /statusz and net/http/pprof.
//
// The registry is built for hot paths: a metric handle is resolved once
// (registration takes a mutex) and then mutated with a single atomic
// op. Every method on a nil *Registry or a nil metric handle is a
// no-op, so library code can thread an optional registry through
// without branches — uninstrumented users and tests pay one nil check
// per call site and nothing else.
//
// Metrics whose value already lives somewhere else (an atomic the store
// maintains anyway, a map size behind a lock) register as CounterFunc/
// GaugeFunc and are evaluated only at scrape time, so instrumenting
// them costs the hot path literally nothing.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families and renders them. All methods are safe
// for concurrent use; registration is idempotent (the same name and
// label set returns the same handle).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric name: a help string, a type, and one child per
// distinct label set.
type family struct {
	name, help, typ string
	children        map[string]child // keyed by rendered label string
	order           []string         // registration order, sorted at render
}

type child struct {
	labels string // rendered `{k="v",...}` or ""
	metric any    // *Counter | *Gauge | *Histogram | funcMetric
}

// funcMetric is a scrape-time callback counter or gauge.
type funcMetric struct{ fn func() float64 }

// labelString renders alternating key/value pairs into the canonical
// `{k="v",...}` form (keys sorted so the same set always renders the
// same way). It panics on an odd count — a registration-time programmer
// error, never reachable from a hot path.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value count")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// register finds or creates the child for (name, labels). A name reused
// with a different metric type panics: that is a registration bug, and
// rendering both under one TYPE line would corrupt the exposition.
func (r *Registry) register(name, help, typ string, labels []string, mk func() any) any {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]child)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	if c, ok := f.children[ls]; ok {
		return c.metric
	}
	m := mk()
	f.children[ls] = child{labels: ls, metric: m}
	f.order = append(f.order, ls)
	return m
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are a caller bug; they render as-is).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers (or finds) a counter. labels are alternating
// key/value pairs naming one child of the family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.register(name, help, "counter", labels, func() any { return new(Counter) })
	if m == nil {
		return nil
	}
	return m.(*Counter)
}

// CounterFunc registers a counter whose value is read at scrape time —
// for totals something else already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, "counter", labels, func() any { return funcMetric{fn} })
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n; Inc and Dec are ±1.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.register(name, help, "gauge", labels, func() any { return new(Gauge) })
	if m == nil {
		return nil
	}
	return m.(*Gauge)
}

// GaugeFunc registers a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, "gauge", labels, func() any { return funcMetric{fn} })
}

// LatencyBuckets is the default histogram layout for durations in
// seconds: 100µs to 10s, roughly quartering per step.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default histogram layout for byte sizes: 256 B to
// 16 MiB, doubling twice per step.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// Histogram is a fixed-bucket histogram. Observation is lock-free: one
// atomic add on the bucket, one on the count, one CAS loop on the sum.
// Renders as a cumulative Prometheus histogram. Each bucket can hold
// one exemplar — the trace ID of the latest observation that landed in
// it — rendered in the JSON snapshot only (the 0.0.4 text format
// predates exemplars and extra tokens would break strict parsers).
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Int64
	ex     []atomic.Pointer[exemplar]
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// exemplar links one bucket to a concrete trace.
type exemplar struct {
	trace TraceID
	value float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

// ObserveSince records the seconds elapsed since t0. Used as
//
//	defer h.ObserveSince(time.Now())
//
// it is the zero-allocation timer: the argument is evaluated at the
// defer statement, and a deferred method call needs no closure.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.observe(time.Since(t0).Seconds())
}

// ObserveExemplar records one value and, when trace is set, pins it as
// the receiving bucket's exemplar so a slow bucket links to a concrete
// trace at /debug/traces.
func (h *Histogram) ObserveExemplar(v float64, trace TraceID) {
	if h == nil {
		return
	}
	i := h.observe(v)
	if !trace.IsZero() {
		h.ex[i].Store(&exemplar{trace: trace, value: v})
	}
}

// ObserveSinceExemplar is ObserveSince with an exemplar trace.
func (h *Histogram) ObserveSinceExemplar(t0 time.Time, trace TraceID) {
	if h == nil {
		return
	}
	h.ObserveExemplar(time.Since(t0).Seconds(), trace)
}

func (h *Histogram) observe(v float64) int {
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable; a binary search buys nothing at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return i
		}
	}
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Histogram registers (or finds) a histogram with the given ascending
// bucket upper bounds (nil means LatencyBuckets). The +Inf bucket is
// implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	m := r.register(name, help, "histogram", labels, func() any {
		if buckets == nil {
			buckets = LatencyBuckets
		}
		bounds := append([]float64(nil), buckets...)
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
		return &Histogram{
			bounds: bounds,
			counts: make([]atomic.Int64, len(bounds)+1),
			ex:     make([]atomic.Pointer[exemplar], len(bounds)+1),
		}
	})
	if m == nil {
		return nil
	}
	return m.(*Histogram)
}

// fmtFloat renders a float the way the exposition format expects.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		sort.Strings(f.order)
	}
	return fams
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families and children in sorted
// order so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, ls := range f.order {
			c := f.children[ls]
			switch m := c.metric.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, m.Value())
			case funcMetric:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, fmtFloat(m.fn()))
			case *Histogram:
				cum := int64(0)
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, mergeLE(ls, fmtFloat(bound)), cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, mergeLE(ls, "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, fmtFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, m.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLE adds the le label to an existing (possibly empty) label set.
func mergeLE(ls, le string) string {
	if ls == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(ls, "}") + `,le="` + le + `"}`
}

// WriteJSON renders a flat JSON snapshot: one object mapping each fully
// qualified series name (labels included) to its value; histograms
// expand to _bucket/_sum/_count entries like the text format. Keys are
// sorted, so snapshots diff cleanly — the shape CI archives as
// BENCH_metrics.json.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	var b strings.Builder
	b.WriteString("{\n")
	first := true
	emit := func(series, val string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&b, "  %s: %s", strconv.Quote(series), val)
	}
	for _, f := range r.sortedFamilies() {
		for _, ls := range f.order {
			c := f.children[ls]
			switch m := c.metric.(type) {
			case *Counter:
				emit(f.name+ls, strconv.FormatInt(m.Value(), 10))
			case *Gauge:
				emit(f.name+ls, strconv.FormatInt(m.Value(), 10))
			case funcMetric:
				emit(f.name+ls, jsonFloat(m.fn()))
			case *Histogram:
				cum := int64(0)
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					emit(f.name+"_bucket"+mergeLE(ls, fmtFloat(bound)), strconv.FormatInt(cum, 10))
				}
				cum += m.counts[len(m.bounds)].Load()
				emit(f.name+"_bucket"+mergeLE(ls, "+Inf"), strconv.FormatInt(cum, 10))
				emit(f.name+"_sum"+ls, jsonFloat(m.Sum()))
				emit(f.name+"_count"+ls, strconv.FormatInt(m.Count(), 10))
				for i := range m.ex {
					e := m.ex[i].Load()
					if e == nil {
						continue
					}
					le := "+Inf"
					if i < len(m.bounds) {
						le = fmtFloat(m.bounds[i])
					}
					emit(f.name+"_exemplar"+mergeLE(ls, le),
						strconv.Quote("trace_id="+e.trace.String()+" value="+fmtFloat(e.value)))
				}
			}
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonFloat renders a float as valid JSON (NaN/Inf become null).
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return fmtFloat(v)
}
