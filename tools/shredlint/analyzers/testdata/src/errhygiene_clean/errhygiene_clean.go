// Negative suite for the errhygiene analyzer: errors handled, loudly
// discarded, or sent to sinks that cannot fail.
package persist

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func journal(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // deferred cleanup is exempt
	if _, err := f.Write([]byte("rec")); err != nil {
		return err
	}
	return f.Sync()
}

func remove(path string) {
	_ = os.Remove(path) // loud discard survives review and grep
}

func render(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "refs=%d\n", n) // in-memory sink cannot fail
	b.WriteString("done")
	return b.String()
}

func buffer(n int) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "refs=%d\n", n)
	return b.Bytes()
}

func banner() {
	fmt.Println("shredder persist")
	fmt.Fprintf(os.Stderr, "warning: degraded\n")
}

func wrap(name string, err error) error {
	return fmt.Errorf("persist: load %s: %w", name, err)
}
